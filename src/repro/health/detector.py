"""The heartbeat failure detector: alive -> suspect -> dead, and back.

``FailureDetector`` runs one monitor thread that, every ``interval``
seconds, emits a ``kind="heartbeat"`` message *on behalf of* every live
virtual processor (inside that VP's execution context, through
``Machine.route``) addressed to the monitor VP, then evaluates per-VP
silence.  Because emission goes through the routing choke point, a VP
that is oracle-dead cannot emit (route raises), and an installed
:class:`~repro.faults.transport.FaultyTransport` — including its
:class:`~repro.faults.partition.PartitionPlan` cuts — drops, delays, and
duplicates heartbeats like any other traffic.  Detection is therefore
*inference from observed silence*, with all the failure modes that
implies, rather than a synchronous oracle callback.

Suspicion lifecycle (docs/fault_model.md §9):

* **alive** — heartbeats arriving within ``suspect_after * interval``;
* **suspect** — silence exceeded the suspect threshold.  Reversible: a
  resuming heartbeat flips the VP straight back to alive (a *flap*),
  and nothing destructive has happened;
* **dead** — silence exceeded ``dead_after * interval``.  The verdict
  is fired to listeners (recovery, the task farm, the rebalancer), who
  act exactly as they would on an oracle notification;
* **quarantined** — a heartbeat arrived from a VP the detector had
  declared dead *that the oracle never killed*: a false positive (e.g.
  a healed partition).  The VP is fenced — its stale records refuse
  writes by epoch — until the monitor thread runs the rejoin protocol:
  membership/epoch rewritten onto it, suspect-queued sends flushed,
  and only then is it alive again (``"rejoin"`` verdict).

``Machine.fail`` remains the scripted-kill entry point: the detector
subscribes to the machine's failure listeners and converts an oracle
kill into an immediate ``"dead"`` verdict, so recovery keeps firing
without waiting out a timeout, and exactly one subsystem — this one —
is the source of failure events either way.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.status import ProcessorFailedError
from repro.vp import fabric
from repro.vp.message import Message

HEARTBEAT_KIND = "heartbeat"

# Inter-arrival EWMA smoothing for the phi-style suspicion score.
_EWMA_ALPHA = 0.2


class HealthState(enum.Enum):
    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"
    QUARANTINED = "quarantined"


@dataclass(frozen=True)
class HealthEvent:
    """One verdict transition for one VP, fired to detector listeners.

    ``transition`` is ``"suspect"``, ``"alive"`` (a suspect resumed —
    flap back), ``"dead"``, ``"quarantine"`` (a declared-dead VP
    resumed heartbeating), or ``"rejoin"`` (quarantine completed, the
    VP is a member again).  ``reason`` is ``"timeout"`` for inferred
    verdicts and ``"oracle"`` for scripted kills.
    """

    vp: int
    transition: str
    state: HealthState
    at: float
    suspicion: float = 0.0
    reason: str = "timeout"


class _VPHealth:
    __slots__ = ("state", "last_seen", "mean_interval", "heartbeats")

    def __init__(self, now: float) -> None:
        self.state = HealthState.ALIVE
        self.last_seen = now
        self.mean_interval: Optional[float] = None
        self.heartbeats = 0


class FailureDetector:
    """Heartbeat-based failure detection over the message fabric.

    ``suspect_after`` / ``dead_after`` are thresholds in multiples of
    ``interval``: a VP silent for more than ``suspect_after * interval``
    becomes suspect, for more than ``dead_after * interval`` dead.
    ``monitor`` names the VP whose node collects the heartbeats (the
    detector itself is machine-global, like the failure oracle it
    replaces — the monitor number only fixes which routes the
    heartbeats traverse, so a partition isolating the monitor's side
    makes the *other* side fall silent).
    """

    def __init__(
        self,
        machine: Any,
        interval: float = 0.05,
        suspect_after: float = 3.0,
        dead_after: float = 8.0,
        monitor: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if not 0 < suspect_after < dead_after:
            raise ValueError(
                "thresholds must satisfy 0 < suspect_after < dead_after"
            )
        machine.processor(monitor)  # validate range
        self.machine = machine
        self.interval = float(interval)
        self.suspect_after = float(suspect_after)
        self.dead_after = float(dead_after)
        self.monitor = int(monitor)
        self._lock = threading.Lock()
        self._vps: Dict[int, _VPHealth] = {}
        self._listeners: List[Callable[[HealthEvent], None]] = []
        self._pending_rejoin: List[int] = []
        self._events: List[HealthEvent] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._installed = False
        # Counters surfaced through snapshot()/diagnostics.
        self.heartbeats_received = 0
        self.false_positives = 0
        self.rejoins = 0

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> "FailureDetector":
        """Wire the detector into the machine and start the monitor.

        Registers the ``heartbeat`` kind handler, becomes the machine's
        health authority (``machine._health``), converts oracle kills
        into immediate dead verdicts, and — when a recovery coordinator
        is already installed on the machine's failure listeners —
        migrates it onto detector verdicts so death notifications have
        exactly one source.
        """
        if self._installed:
            return self
        machine = self.machine
        now = time.monotonic()
        with self._lock:
            for p in range(machine.num_nodes):
                self._vps.setdefault(p, _VPHealth(now))
        machine.register_kind_handler(HEARTBEAT_KIND, self._on_heartbeat)
        machine._health = self  # type: ignore[attr-defined]
        machine.add_failure_listener(self._on_oracle_failure)
        self._installed = True
        coordinator = getattr(machine, "_recovery_coordinator", None)
        if coordinator is not None and getattr(
            coordinator, "_installed", False
        ):
            # The coordinator re-subscribes through the detector path
            # now that machine._health is set and installed.
            coordinator.uninstall()
            coordinator.install()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="health-monitor", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if not self._installed:
            return
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
        self._thread = None
        machine = self.machine
        machine.remove_failure_listener(self._on_oracle_failure)
        if getattr(machine, "_health", None) is self:
            machine._health = None
        self._installed = False
        # Hand recovery back to the oracle path so death notifications
        # never go dark.
        coordinator = getattr(machine, "_recovery_coordinator", None)
        if coordinator is not None and getattr(
            coordinator, "_installed", False
        ):
            coordinator.uninstall()
            coordinator.install()

    uninstall = close

    def __enter__(self) -> "FailureDetector":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def installed(self) -> bool:
        return self._installed

    # -- verdict listeners ----------------------------------------------------

    def add_listener(self, listener: Callable[[HealthEvent], None]) -> None:
        """Subscribe to verdicts.  Dedups by ``==`` like the machine's
        failure listeners (bound methods compare equal across accesses)."""
        with self._lock:
            if all(fn != listener for fn in self._listeners):
                self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[HealthEvent], None]) -> None:
        with self._lock:
            self._listeners = [
                fn for fn in self._listeners if fn != listener
            ]

    def _fire(self, events: List[HealthEvent]) -> None:
        """Deliver events outside the detector lock; a listener failure
        must never corrupt detection or the transport path."""
        if not events:
            return
        with self._lock:
            self._events.extend(events)
            listeners = list(self._listeners)
        observer = getattr(self.machine, "_observer", None)
        for event in events:
            if observer is not None:
                observer.health_transition(event.vp, event.transition)
            for listener in listeners:
                try:
                    listener(event)
                except Exception:  # noqa: BLE001
                    pass

    # -- queries ---------------------------------------------------------------

    def state_of(self, vp: int) -> HealthState:
        with self._lock:
            entry = self._vps.get(vp)
            return entry.state if entry is not None else HealthState.ALIVE

    def is_dead(self, vp: int) -> bool:
        """Dead *or* quarantined: a quarantined VP is fenced out of
        planning decisions until its rejoin completes."""
        with self._lock:
            entry = self._vps.get(vp)
            return entry is not None and entry.state in (
                HealthState.DEAD, HealthState.QUARANTINED
            )

    def is_suspect(self, vp: int) -> bool:
        """Suspected but not confirmed dead (includes quarantine: the VP
        provably lives, its membership just isn't restored yet)."""
        with self._lock:
            entry = self._vps.get(vp)
            return entry is not None and entry.state in (
                HealthState.SUSPECT, HealthState.QUARANTINED
            )

    def suspicion(self, vp: int) -> float:
        """Phi-style suspicion score: observed silence over the smoothed
        inter-arrival mean.  ~1 for a healthy VP, growing without bound
        as silence accumulates."""
        now = time.monotonic()
        with self._lock:
            entry = self._vps.get(vp)
            if entry is None:
                return 0.0
            mean = entry.mean_interval or self.interval
            return (now - entry.last_seen) / max(mean, 1e-9)

    def events(self) -> List[HealthEvent]:
        with self._lock:
            return list(self._events)

    def snapshot(self) -> dict:
        """Diagnostics block for ``Machine.diagnostics()``."""
        now = time.monotonic()
        with self._lock:
            return {
                "interval": self.interval,
                "monitor": self.monitor,
                "states": {
                    vp: entry.state.value
                    for vp, entry in sorted(self._vps.items())
                },
                "suspicion": {
                    vp: round(
                        (now - entry.last_seen)
                        / max(entry.mean_interval or self.interval, 1e-9),
                        3,
                    )
                    for vp, entry in sorted(self._vps.items())
                },
                "heartbeats_received": self.heartbeats_received,
                "false_positives": self.false_positives,
                "rejoins": self.rejoins,
                "transitions": len(self._events),
            }

    # -- heartbeat ingestion ---------------------------------------------------

    def _on_heartbeat(self, message: Message) -> None:
        """Final delivery of a ``kind="heartbeat"`` message.

        Duplicates are harmless (last-seen just refreshes twice) and
        stragglers from an oracle-dead VP are ignored — the oracle
        outranks inference.
        """
        vp = message.source
        if self.machine.is_failed(vp):
            return
        now = time.monotonic()
        events: List[HealthEvent] = []
        with self._lock:
            entry = self._vps.get(vp)
            if entry is None:
                entry = self._vps[vp] = _VPHealth(now)
            self.heartbeats_received += 1
            entry.heartbeats += 1
            sample = now - entry.last_seen
            if sample > 0:
                if entry.mean_interval is None:
                    entry.mean_interval = sample
                else:
                    entry.mean_interval += _EWMA_ALPHA * (
                        sample - entry.mean_interval
                    )
            entry.last_seen = now
            if entry.state is HealthState.SUSPECT:
                # Flap back: the suspect resumed before confirmation.
                entry.state = HealthState.ALIVE
                events.append(
                    HealthEvent(vp, "alive", HealthState.ALIVE, now)
                )
            elif entry.state is HealthState.DEAD:
                # A heartbeat from a VP we declared dead that the oracle
                # never killed: false positive.  Fence it in quarantine;
                # the monitor thread performs the rejoin protocol.
                entry.state = HealthState.QUARANTINED
                self.false_positives += 1
                self._pending_rejoin.append(vp)
                events.append(
                    HealthEvent(
                        vp, "quarantine", HealthState.QUARANTINED, now
                    )
                )
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.heartbeat(vp)
            if any(e.transition == "quarantine" for e in events):
                observer.false_positive(vp)
        for event in events:
            if event.transition == "alive":
                self.machine.flush_suspect_queue(vp)
        self._fire(events)

    # -- oracle integration ----------------------------------------------------

    def _on_oracle_failure(self, vp: int) -> None:
        """A scripted ``Machine.fail``: immediate dead verdict, no
        timeout — the oracle is ground truth, never a suspicion."""
        now = time.monotonic()
        events: List[HealthEvent] = []
        with self._lock:
            entry = self._vps.get(vp)
            if entry is None:
                entry = self._vps[vp] = _VPHealth(now)
            if entry.state is not HealthState.DEAD:
                entry.state = HealthState.DEAD
                events.append(
                    HealthEvent(
                        vp, "dead", HealthState.DEAD, now, reason="oracle"
                    )
                )
        self.machine.drop_suspect_queue(vp)
        self._fire(events)

    # -- the monitor loop ------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self.step()
            except Exception:  # noqa: BLE001 - the monitor must survive
                pass
            self._stop.wait(self.interval)

    def step(self) -> None:
        """One monitor round: emit heartbeats, evaluate silence, and
        complete pending rejoins.  Public so tests can drive detection
        deterministically without the thread."""
        started = time.monotonic()
        self._emit_heartbeats()
        # A kill listener (and the recovery it triggers) runs
        # synchronously inside route(), so one emission can stall this
        # thread for seconds.  Heartbeats that arrived *before* the
        # stall then look ancient, and evaluating against them would
        # falsely suspect half the machine.  When the round overran the
        # suspect window, refresh every VP heard from during the round —
        # it was provably alive despite the stall — while a VP silent
        # since before the round keeps accruing real silence, so
        # detection is never starved by persistent slowness.
        if time.monotonic() - started > self.suspect_after * self.interval:
            now = time.monotonic()
            with self._lock:
                for entry in self._vps.values():
                    if entry.last_seen >= started:
                        entry.last_seen = now
        self._evaluate()
        self._complete_rejoins()

    def _emit_heartbeats(self) -> None:
        machine = self.machine
        for p in range(machine.num_nodes):
            if machine.is_failed(p):
                continue
            try:
                with fabric.execution_context(processor=p):
                    machine.route(
                        Message(
                            source=p,
                            dest=self.monitor,
                            payload=("heartbeat", p),
                            tag="heartbeat",
                            kind=HEARTBEAT_KIND,
                        )
                    )
            except ProcessorFailedError:
                # The VP (or the monitor) died between the aliveness
                # check and the route: silence is the correct outcome.
                continue

    def _evaluate(self) -> None:
        now = time.monotonic()
        suspect_limit = self.suspect_after * self.interval
        dead_limit = self.dead_after * self.interval
        events: List[HealthEvent] = []
        latencies: List[float] = []
        with self._lock:
            for vp, entry in self._vps.items():
                if entry.state in (HealthState.DEAD, HealthState.QUARANTINED):
                    continue
                silence = now - entry.last_seen
                mean = entry.mean_interval or self.interval
                score = silence / max(mean, 1e-9)
                if entry.state is HealthState.ALIVE:
                    if silence > suspect_limit:
                        entry.state = HealthState.SUSPECT
                        events.append(
                            HealthEvent(
                                vp, "suspect", HealthState.SUSPECT, now,
                                suspicion=score,
                            )
                        )
                if entry.state is HealthState.SUSPECT and silence > dead_limit:
                    entry.state = HealthState.DEAD
                    latencies.append(silence)
                    events.append(
                        HealthEvent(
                            vp, "dead", HealthState.DEAD, now,
                            suspicion=score,
                        )
                    )
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            for latency in latencies:
                observer.detection_latency(latency)
        for event in events:
            if event.transition == "dead":
                # Confirmed dead: queued sends will never flush.
                self.machine.drop_suspect_queue(event.vp)
        self._fire(events)

    def _complete_rejoins(self) -> None:
        with self._lock:
            pending, self._pending_rejoin = self._pending_rejoin, []
        for vp in pending:
            self._rejoin(vp)

    def _rejoin(self, vp: int) -> None:
        """Bring a falsely-suspected VP back into membership.

        The VP's own state (sections it still holds, buffered mailbox
        messages) is intact — it never actually died.  What is stale is
        its *view*: arrays whose membership and epoch moved on while it
        was unreachable.  The array manager's rejoin protocol rewrites
        membership onto it (freeing sections it no longer owns, so the
        one-owner-per-section invariant holds) and clears the per-array
        ``recovered_procs`` guard so a *real* death later re-fires
        recovery.  Only after that do suspect-queued sends flush and
        the ``"rejoin"`` verdict fire.
        """
        machine = self.machine
        now = time.monotonic()
        manager = getattr(machine, "_array_manager", None)
        if manager is not None:
            try:
                manager.rejoin_processor(vp, origin=self.monitor)
            except Exception:  # noqa: BLE001 - rejoin is best-effort;
                # a re-cut partition leaves the VP quarantined-but-alive,
                # and the next quarantine round retries.
                pass
        events: List[HealthEvent] = []
        with self._lock:
            entry = self._vps.get(vp)
            if entry is not None and entry.state is HealthState.QUARANTINED:
                entry.state = HealthState.ALIVE
                entry.last_seen = now
                self.rejoins += 1
                events.append(
                    HealthEvent(vp, "rejoin", HealthState.ALIVE, now)
                )
        machine.flush_suspect_queue(vp)
        self._fire(events)


def install_detector(machine: Any, **options: Any) -> FailureDetector:
    """Install (or return) the machine's failure detector.

    Idempotent like :func:`~repro.arrays.durability.install_recovery`:
    a machine has at most one health authority.  Options are forwarded
    to :class:`FailureDetector` on first installation.
    """
    existing = getattr(machine, "_health", None)
    if existing is not None:
        return existing.install()
    return FailureDetector(machine, **options).install()
