"""Heartbeat failure detection: inferring death from silence.

Every robustness layer before this one learned about death from a
perfect oracle — ``Machine.fail()`` synchronously notified its
listeners, so detection was instant, never wrong, and partitions could
not exist.  :class:`~repro.health.detector.FailureDetector` replaces
that oracle as the *source* of failure events: virtual processors emit
periodic ``kind="heartbeat"`` messages over the ordinary fabric, a
monitor tracks per-VP inter-arrival times, and suspicion climbs through
``alive -> suspect -> dead`` as silence accumulates.  Because the
heartbeats ride the transport stack, everything that perturbs ordinary
traffic — :class:`~repro.faults.transport.FaultyTransport` drops and
delays, :class:`~repro.faults.partition.PartitionPlan` cuts — perturbs
detection too, which is exactly what makes false suspicion (and the
quarantine/rejoin path that survives it) testable.

See ``docs/fault_model.md`` §9 for the suspicion lifecycle and the
split-brain fencing argument.
"""

from repro.health.detector import (
    HEARTBEAT_KIND,
    FailureDetector,
    HealthEvent,
    HealthState,
    install_detector,
)

__all__ = [
    "HEARTBEAT_KIND",
    "FailureDetector",
    "HealthEvent",
    "HealthState",
    "install_detector",
]
