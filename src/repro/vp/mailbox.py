"""Per-processor mailboxes with selective typed receive (§3.4.1).

Each virtual processor owns one mailbox.  ``recv`` scans buffered messages
for the first one matching the requested (type, tag, source, group) filter
and suspends until such a message arrives — the *selective receive* the
thesis requires to keep task-parallel and data-parallel traffic disjoint.

``recv_untyped`` takes the oldest message regardless of filters, modelling
the original Cosmic Environment behaviour whose conflicts §3.4.1 analyses.
"""

from __future__ import annotations

import threading
from typing import Hashable, Optional

from repro.vp.message import Message, MessageType

_RECV_TIMEOUT = 30.0


class Mailbox:
    """An in-order buffer of messages with selective receive."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._buffer: list[Message] = []
        self._cond = threading.Condition()
        # Traffic accounting for the simulated-cost model (DESIGN.md
        # "Fidelity notes"): counts are exact and GIL-independent.
        self.received_count = 0
        self.received_bytes = 0

    def deliver(self, message: Message) -> None:
        """Called by the machine's transport to enqueue a message."""
        with self._cond:
            self._buffer.append(message)
            self._cond.notify_all()

    def recv(
        self,
        mtype: Optional[MessageType] = MessageType.PCN,
        tag: Hashable = None,
        source: Optional[int] = None,
        group: Optional[Hashable] = None,
        match_any_tag: bool = False,
        match_any_group: bool = False,
        timeout: Optional[float] = None,
    ) -> Message:
        """Selective receive: first buffered message matching the filter.

        Suspends until a match arrives.  ``mtype=None`` matches any type.
        """
        limit = _RECV_TIMEOUT if timeout is None else timeout

        def find() -> Optional[int]:
            for i, msg in enumerate(self._buffer):
                if msg.matches(
                    mtype,
                    tag=tag,
                    source=source,
                    group=group,
                    match_any_tag=match_any_tag,
                    match_any_group=match_any_group,
                ):
                    return i
            return None

        with self._cond:
            index = find()
            if index is None:
                ok = self._cond.wait_for(
                    lambda: find() is not None, timeout=limit
                )
                if not ok:
                    raise TimeoutError(
                        f"processor {self.owner}: selective recv "
                        f"(type={mtype}, tag={tag!r}, source={source}, "
                        f"group={group!r}) timed out after {limit}s"
                    )
                index = find()
                assert index is not None
            message = self._buffer.pop(index)
            self.received_count += 1
            self.received_bytes += message.nbytes()
            return message

    def recv_untyped(self, timeout: Optional[float] = None) -> Message:
        """Non-selective receive: oldest message, any type/tag/group.

        Models the original untyped message-passing whose interception
        hazard §3.4.1 describes; used only by the conflict experiments.
        """
        limit = _RECV_TIMEOUT if timeout is None else timeout
        with self._cond:
            ok = self._cond.wait_for(lambda: bool(self._buffer), timeout=limit)
            if not ok:
                raise TimeoutError(
                    f"processor {self.owner}: untyped recv timed out"
                )
            message = self._buffer.pop(0)
            self.received_count += 1
            self.received_bytes += message.nbytes()
            return message

    def pending(self) -> int:
        with self._cond:
            return len(self._buffer)

    def drain(self) -> list[Message]:
        """Remove and return all buffered messages (test/diagnostic aid)."""
        with self._cond:
            out, self._buffer = self._buffer, []
            return out
