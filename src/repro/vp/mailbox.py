"""Per-processor mailboxes with selective typed receive (§3.4.1).

Each virtual processor owns one mailbox.  ``recv`` scans buffered messages
for the first one matching the requested (type, tag, source, group) filter
and suspends until such a message arrives — the *selective receive* the
thesis requires to keep task-parallel and data-parallel traffic disjoint.

``recv_untyped`` takes the oldest message regardless of filters, modelling
the original Cosmic Environment behaviour whose conflicts §3.4.1 analyses.

A mailbox can be *poisoned* (its owner processor died): every blocked
receiver wakes immediately and raises the poison exception instead of
waiting out its deadline — the §4.1.2 discipline of surfacing partial
failure as a value/error rather than a hang.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Hashable, Optional

from repro.vp.message import Message, MessageType

# Fallback receive deadline; overridable machine-wide via
# ``Machine(default_recv_timeout=...)`` or the REPRO_RECV_TIMEOUT env var.
_RECV_TIMEOUT = 30.0


def default_recv_timeout() -> float:
    """The process-wide default receive deadline.

    ``REPRO_RECV_TIMEOUT`` overrides the built-in 30 s; a malformed value
    is ignored rather than crashing the transport.
    """
    raw = os.environ.get("REPRO_RECV_TIMEOUT")
    if raw:
        try:
            value = float(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return _RECV_TIMEOUT


class Mailbox:
    """An in-order buffer of messages with selective receive."""

    def __init__(
        self, owner: int, default_timeout: Optional[float] = None
    ) -> None:
        self.owner = owner
        self.default_timeout = default_timeout
        self._buffer: list[Message] = []
        self._cond = threading.Condition()
        self._poison: Optional[BaseException] = None
        self._dead_sources: set[int] = set()
        # Currently-blocked receivers: thread ident -> (human-readable
        # filter description, selective-receive source or None).  Read by
        # Machine.diagnostics() and the deadlock watchdog's wait-graph
        # builder — the source lets the watchdog distinguish "waiting on a
        # suspected peer" from a true circular wait.
        self._waiting: dict[int, tuple[str, Optional[int]]] = {}
        # Traffic accounting for the simulated-cost model (DESIGN.md
        # "Fidelity notes"): counts are exact and GIL-independent.
        self.received_count = 0
        self.received_bytes = 0
        # Observability feed (repro.obs.Observer) or None.  Set by
        # Machine.observe(); queue-depth and receive-wait metrics stay
        # no-ops (one attribute check) while unset.
        self.obs_hooks = None

    def deliver(self, message: Message) -> None:
        """Called by the machine's transport to enqueue a message."""
        with self._cond:
            self._buffer.append(message)
            depth = len(self._buffer)
            self._cond.notify_all()
        hooks = self.obs_hooks
        if hooks is not None:
            hooks.mailbox_delivered(self.owner, depth)

    # -- failure semantics ---------------------------------------------------

    def poison(self, exc: BaseException) -> None:
        """Mark the mailbox dead: blocked and future receives raise ``exc``."""
        with self._cond:
            self._poison = exc
            self._cond.notify_all()

    def unpoison(self) -> None:
        """Clear a previous poisoning (processor revived)."""
        with self._cond:
            self._poison = None

    @property
    def poisoned(self) -> bool:
        with self._cond:
            return self._poison is not None

    def mark_source_dead(self, source: int) -> None:
        """A peer died: wake receivers waiting *specifically* on it.

        Already-buffered messages from the dead peer stay receivable (they
        arrived before the death); only a receive that would otherwise
        suspend on the dead source raises.
        """
        with self._cond:
            self._dead_sources.add(source)
            self._cond.notify_all()

    def mark_source_alive(self, source: int) -> None:
        with self._cond:
            self._dead_sources.discard(source)

    def _limit(self, timeout: Optional[float]) -> float:
        if timeout is not None:
            return timeout
        if self.default_timeout is not None:
            return self.default_timeout
        return default_recv_timeout()

    def _wait_for_match(
        self,
        find,
        limit: float,
        describe: str,
        source: Optional[int] = None,
    ) -> None:
        """Block until ``find()`` matches, or raise on poison / dead
        source / timeout; the condition lock must be held."""
        from repro.status import ProcessorFailedError

        def source_dead() -> bool:
            return source is not None and source in self._dead_sources

        if self._poison is not None:
            raise self._poison
        if find() is None:
            ident = threading.get_ident()
            self._waiting[ident] = (describe, source)
            try:
                ok = self._cond.wait_for(
                    lambda: self._poison is not None
                    or source_dead()
                    or find() is not None,
                    timeout=limit,
                )
            finally:
                self._waiting.pop(ident, None)
            if self._poison is not None:
                raise self._poison
            if find() is None:
                if source_dead():
                    raise ProcessorFailedError(
                        f"processor {self.owner}: {describe} can never be "
                        f"satisfied — source processor {source} failed",
                        processor=source,
                    )
                raise TimeoutError(
                    f"processor {self.owner}: {describe} timed out after "
                    f"{limit}s"
                )

    def blocked_receivers(self) -> dict[int, str]:
        """Snapshot of currently-blocked receives (ident -> description)."""
        with self._cond:
            return {
                ident: describe
                for ident, (describe, _source) in self._waiting.items()
            }

    def blocked_receivers_detailed(
        self,
    ) -> dict[int, tuple[str, Optional[int]]]:
        """Like :meth:`blocked_receivers` but with the selective-receive
        source (or None) alongside each description."""
        with self._cond:
            return dict(self._waiting)

    # -- receive -------------------------------------------------------------

    def recv(
        self,
        mtype: Optional[MessageType] = MessageType.PCN,
        tag: Hashable = None,
        source: Optional[int] = None,
        group: Optional[Hashable] = None,
        match_any_tag: bool = False,
        match_any_group: bool = False,
        timeout: Optional[float] = None,
    ) -> Message:
        """Selective receive: first buffered message matching the filter.

        Suspends until a match arrives.  ``mtype=None`` matches any type.
        """
        limit = self._limit(timeout)

        def find() -> Optional[int]:
            for i, msg in enumerate(self._buffer):
                if msg.matches(
                    mtype,
                    tag=tag,
                    source=source,
                    group=group,
                    match_any_tag=match_any_tag,
                    match_any_group=match_any_group,
                ):
                    return i
            return None

        describe = (
            f"selective recv (type={mtype}, tag={tag!r}, source={source}, "
            f"group={group!r})"
        )
        hooks = self.obs_hooks
        t0 = time.perf_counter() if hooks is not None else 0.0
        with self._cond:
            self._wait_for_match(find, limit, describe, source=source)
            index = find()
            assert index is not None
            message = self._buffer.pop(index)
            self.received_count += 1
            self.received_bytes += message.nbytes()
            depth = len(self._buffer)
        if hooks is not None:
            hooks.mailbox_received(
                self.owner, time.perf_counter() - t0, depth
            )
        return message

    def recv_untyped(self, timeout: Optional[float] = None) -> Message:
        """Non-selective receive: oldest message, any type/tag/group.

        Models the original untyped message-passing whose interception
        hazard §3.4.1 describes; used only by the conflict experiments.
        """
        limit = self._limit(timeout)

        def find() -> Optional[int]:
            return 0 if self._buffer else None

        hooks = self.obs_hooks
        t0 = time.perf_counter() if hooks is not None else 0.0
        with self._cond:
            self._wait_for_match(find, limit, "untyped recv")
            message = self._buffer.pop(0)
            self.received_count += 1
            self.received_bytes += message.nbytes()
            depth = len(self._buffer)
        if hooks is not None:
            hooks.mailbox_received(
                self.owner, time.perf_counter() - t0, depth
            )
        return message

    def reset_traffic_counters(self) -> None:
        """Zero the receive-side traffic accounting."""
        with self._cond:
            self.received_count = 0
            self.received_bytes = 0

    def pending(self) -> int:
        with self._cond:
            return len(self._buffer)

    def drain(self) -> list[Message]:
        """Remove and return all buffered messages (test/diagnostic aid)."""
        with self._cond:
            out, self._buffer = self._buffer, []
            return out
