"""The layered message fabric: execution context + interceptor stack.

Every message the machine moves flows through one choke point,
:meth:`~repro.vp.machine.Machine.route`, and from there down an ordered
**interceptor stack** to final mailbox (or server) delivery.  This module
provides the two halves of that fabric:

* :class:`TransportStack` — an ordered, composable replacement for the old
  single-slot ``install_transport`` hook.  Fault injection
  (:class:`~repro.faults.transport.FaultyTransport`), traffic accounting
  (:class:`TrafficMeter`), and tracing (:class:`TraceInterceptor`) are all
  plain interceptors; pushing one never displaces another, and removing
  one restores exactly the stack beneath it.

* an **execution context** — a thread-local carrying the processor the
  current thread of control runs on and the trace envelope (trace id + hop
  count) it inherited.  :meth:`~repro.vp.processor.VirtualProcessor.spawn`
  propagates the context into child processes and the server propagates it
  into request handlers, so a whole distributed call (wrapper copies,
  their peer messages, nested array-manager hops) shares one trace id and
  every routed message records how many hops deep in the chain it sits.

Interceptor protocol
--------------------

An interceptor is a callable ``interceptor(message, forward)`` where
``forward(message)`` hands the message to the next layer down (ultimately
final delivery).  An interceptor may forward zero times (drop), once
(pass/transform), or several times (duplicate).  Interceptors that hold a
message and re-inject it *later* (delays, reordering) must deliver through
:meth:`TransportStack.forward_from`, which resolves the layers below them
at re-injection time — robust against the stack changing in between.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, List, Optional

from repro.vp.message import Message

Forward = Callable[[Message], None]
Interceptor = Callable[[Message, Forward], None]


# -- execution context --------------------------------------------------------

_trace_counter = itertools.count()


def new_trace_id(prefix: str = "t") -> str:
    """A machine-unique trace identifier (deterministic, not wall-clock)."""
    return f"{prefix}-{next(_trace_counter)}"


class _Context(threading.local):
    processor: Optional[int] = None
    trace_id: Optional[str] = None
    hop: int = 0
    span_id: Optional[str] = None


_context = _Context()


def current_processor() -> Optional[int]:
    """The virtual processor the calling thread executes on (None for
    top-level threads that are not placed on any node)."""
    return _context.processor


def current_trace() -> "tuple[Optional[str], int]":
    """The (trace id, hop count) envelope the calling thread inherited."""
    return _context.trace_id, _context.hop


def current_span_id() -> Optional[str]:
    """The id of the innermost open observability span, if any.

    Maintained by :class:`repro.obs.spans.SpanHandle`; rides the same
    thread-local as the trace envelope so spawned processes and server
    handlers parent their spans onto the caller's."""
    return _context.span_id


class execution_context:
    """Scoped override of the calling thread's fabric context.

    Any field passed as ``None`` is inherited from the enclosing scope, so
    nesting composes: a server handler runs under
    ``execution_context(processor=dest, trace_id=msg.trace_id,
    hop=msg.hop + 1)`` and a process spawned from it inherits all three.
    """

    def __init__(
        self,
        processor: Optional[int] = None,
        trace_id: Optional[str] = None,
        hop: Optional[int] = None,
        span_id: Optional[str] = None,
    ) -> None:
        self._processor = processor
        self._trace_id = trace_id
        self._hop = hop
        self._span_id = span_id
        self._saved: "tuple[Optional[int], Optional[str], int, Optional[str]]" = (
            None, None, 0, None,
        )

    def __enter__(self) -> "execution_context":
        self._saved = (
            _context.processor,
            _context.trace_id,
            _context.hop,
            _context.span_id,
        )
        if self._processor is not None:
            _context.processor = self._processor
        if self._trace_id is not None:
            _context.trace_id = self._trace_id
        if self._hop is not None:
            _context.hop = self._hop
        if self._span_id is not None:
            _context.span_id = self._span_id
        return self

    def __exit__(self, *exc_info: Any) -> None:
        (
            _context.processor,
            _context.trace_id,
            _context.hop,
            _context.span_id,
        ) = self._saved


def snapshot_context() -> "tuple[Optional[int], Optional[str], int, Optional[str]]":
    """Capture the context for propagation into a spawned process."""
    return (
        _context.processor,
        _context.trace_id,
        _context.hop,
        _context.span_id,
    )


# -- the interceptor stack ----------------------------------------------------


class TransportStack:
    """An ordered stack of message interceptors over final delivery.

    Layer 0 is the *top* (first to see a routed message); the last layer
    forwards into ``terminal`` (the machine's final delivery).  The stack
    replaces the old single-slot transport hook: multiple subsystems
    interpose simultaneously and uninstalling one leaves the others
    exactly as they were.
    """

    def __init__(self, terminal: Forward) -> None:
        self._terminal = terminal
        self._layers: List[Interceptor] = []
        self._lock = threading.Lock()

    # -- mutation -----------------------------------------------------------

    def push(self, interceptor: Interceptor) -> Interceptor:
        """Install ``interceptor`` as the new top layer; returns it so
        ``stack.push(Tracer())`` reads naturally."""
        with self._lock:
            self._layers.insert(0, interceptor)
        return interceptor

    def remove(self, interceptor: Interceptor) -> bool:
        """Remove one interceptor wherever it sits; the layers above and
        below knit back together.  Returns False if it was not installed."""
        with self._lock:
            try:
                self._layers.remove(interceptor)
            except ValueError:
                return False
        return True

    def clear(self) -> None:
        with self._lock:
            self._layers.clear()

    # -- introspection -------------------------------------------------------

    def layers(self) -> List[Interceptor]:
        """Snapshot, top first."""
        with self._lock:
            return list(self._layers)

    def __len__(self) -> int:
        with self._lock:
            return len(self._layers)

    def __contains__(self, interceptor: Interceptor) -> bool:
        with self._lock:
            return interceptor in self._layers

    # -- dispatch ------------------------------------------------------------

    def _chain(self, layers: List[Interceptor]) -> Forward:
        forward = self._terminal
        for layer in reversed(layers):
            forward = _bind(layer, forward)
        return forward

    def dispatch(self, message: Message) -> None:
        """Send ``message`` through every layer, top to bottom."""
        self._chain(self.layers())(message)

    def forward_from(self, interceptor: Interceptor, message: Message) -> None:
        """Deliver ``message`` through the layers strictly *below*
        ``interceptor`` (final delivery directly if it is no longer
        installed).  This is the re-injection path for interceptors that
        hold messages on timers."""
        layers = self.layers()
        try:
            below = layers[layers.index(interceptor) + 1 :]
        except ValueError:
            below = []
        self._chain(below)(message)


def _bind(layer: Interceptor, forward: Forward) -> Forward:
    def step(message: Message) -> None:
        layer(message, forward)

    return step


# -- built-in interceptors ----------------------------------------------------


class TraceInterceptor:
    """Records one span per message that crosses its layer.

    A span is a dict with the message's envelope (``trace``, ``hop``,
    ``kind``) plus addressing and size; spans of one logical operation
    share a trace id, so ``spans_for(trace)`` reconstructs the whole hop
    chain of e.g. a region read fanning out to its owner processors.
    """

    def __init__(self, machine: Any = None) -> None:
        self.machine = machine
        self._lock = threading.Lock()
        self._spans: List[dict] = []

    def __call__(self, message: Message, forward: Forward) -> None:
        span = {
            "trace": message.trace_id,
            "span": message.span_id,
            "hop": message.hop,
            "kind": message.kind,
            "seq": message.seq,
            "source": message.source,
            "dest": message.dest,
            "mtype": message.mtype,
            "tag": message.tag,
            "group": message.group,
            "nbytes": message.nbytes(),
        }
        with self._lock:
            self._spans.append(span)
        forward(message)

    # -- queries -------------------------------------------------------------

    def spans(self) -> List[dict]:
        with self._lock:
            return list(self._spans)

    def spans_for(self, trace_id: str) -> List[dict]:
        with self._lock:
            return [s for s in self._spans if s["trace"] == trace_id]

    def traces(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict = {}
        with self._lock:
            for span in self._spans:
                seen.setdefault(span["trace"], None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def install(self, machine: Any = None) -> "TraceInterceptor":
        target = machine if machine is not None else self.machine
        if target is None:
            raise ValueError("no machine to install on")
        self.machine = target
        target.transport_stack.push(self)
        return self

    def uninstall(self) -> None:
        if self.machine is not None:
            self.machine.transport_stack.remove(self)

    def __enter__(self) -> "TraceInterceptor":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()


class TrafficMeter:
    """Per-layer traffic accounting: message/byte counts by message kind.

    Unlike the machine's global routed counters this measures exactly the
    traffic that crosses *its* position in the stack — e.g. pushed beneath
    a fault-injecting layer it counts only surviving messages."""

    def __init__(self, machine: Any = None) -> None:
        self.machine = machine
        self._lock = threading.Lock()
        self.messages = 0
        self.bytes = 0
        self.by_kind: dict = {}

    def __call__(self, message: Message, forward: Forward) -> None:
        size = message.nbytes()
        with self._lock:
            self.messages += 1
            self.bytes += size
            per = self.by_kind.setdefault(message.kind, [0, 0])
            per[0] += 1
            per[1] += size
        forward(message)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "messages": self.messages,
                "bytes": self.bytes,
                "by_kind": {k: tuple(v) for k, v in self.by_kind.items()},
            }

    def install(self, machine: Any = None) -> "TrafficMeter":
        target = machine if machine is not None else self.machine
        if target is None:
            raise ValueError("no machine to install on")
        self.machine = target
        target.transport_stack.push(self)
        return self

    def uninstall(self) -> None:
        if self.machine is not None:
            self.machine.transport_stack.remove(self)

    def __enter__(self) -> "TrafficMeter":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.uninstall()
