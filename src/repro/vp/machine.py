"""The simulated multicomputer: a fixed set of virtual processors.

``Machine`` owns the processors, routes point-to-point messages between
their mailboxes, and hosts the server registry (§5.1.1).  It substitutes for
the Symult s2010 / Cosmic Environment of the thesis' testbed; see DESIGN.md
for the substitution argument.

Failure semantics (§4.1.2 discipline): a processor can be marked dead with
:meth:`Machine.fail`.  Its mailbox is poisoned so blocked receivers raise
:class:`~repro.status.ProcessorFailedError` immediately, sends *from* it
raise (a dead node cannot transmit), and sends *to* it follow the machine's
``dead_send_policy`` — ``"raise"`` surfaces the failure at the sender,
``"drop"`` silently discards, modelling a network that keeps accepting
packets for a crashed node.

The transport is a layered fabric: every routed message descends an
ordered **interceptor stack** (``machine.transport_stack``, a
:class:`~repro.vp.fabric.TransportStack`) before final delivery, which is
how fault injection (:mod:`repro.faults`), tracing
(:class:`~repro.vp.fabric.TraceInterceptor`), and traffic metering
(:class:`~repro.vp.fabric.TrafficMeter`) compose without touching user
code or displacing one another.  :meth:`Machine.route` is the single
choke point — mailbox sends, SPMD group traffic, and cross-processor
server requests all pass through it carrying the shared envelope
(``kind``/``trace_id``/``hop`` on :class:`~repro.vp.message.Message`).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Any, Callable, Hashable, Optional

from repro.status import ProcessorFailedError
from repro.vp import fabric
from repro.vp.fabric import TransportStack
from repro.vp.message import Message, MessageType
from repro.vp.processor import VirtualProcessor
from repro.vp.server import ServerRegistry


class Machine:
    """A multicomputer of ``num_nodes`` virtual processors."""

    def __init__(
        self,
        num_nodes: int,
        default_recv_timeout: Optional[float] = None,
        dead_send_policy: str = "raise",
    ) -> None:
        if num_nodes < 1:
            raise ValueError("a machine needs at least one processor")
        if dead_send_policy not in ("raise", "drop", "queue"):
            raise ValueError(
                f"dead_send_policy must be 'raise', 'drop', or 'queue', "
                f"not {dead_send_policy!r}"
            )
        self.default_recv_timeout = default_recv_timeout
        self.dead_send_policy = dead_send_policy
        self._processors = [VirtualProcessor(i, self) for i in range(num_nodes)]
        self.server = ServerRegistry(self)
        self._lock = threading.Lock()
        self._failed: set[int] = set()
        self.transport_stack = TransportStack(self._deliver)
        # Final-delivery dispatch by envelope kind: mailbox traffic is the
        # default, ``server_request`` executes at the target, and
        # subsystems may register further kinds (the array manager's
        # ``replica_update``/``recovery``) without touching delivery.
        self._kind_handlers: dict[str, Callable[[Message], None]] = {
            "server_request": self.server._execute,
        }
        self._failure_listeners: list[Callable[[int], None]] = []
        # The installed observability layer (repro.obs.Observer) or None.
        # Instrumentation sites across every layer probe this one attribute
        # and no-op when it is None, keeping the hot path cheap.
        self._observer: Optional[Any] = None
        # The installed failure detector (repro.health.FailureDetector) or
        # None.  When present it is the machine's health authority: planning
        # code consults is_unavailable() (oracle-dead OR detector-dead) and
        # the "queue" dead_send_policy buffers sends to its suspects.
        self._health: Optional[Any] = None
        # Sends buffered by the "queue" policy, keyed by suspected dest.
        self._suspect_queues: dict[int, list[Message]] = {}
        # Processors added after construction (Machine.add_processor),
        # recorded for diagnostics: elastic membership is inspectable.
        self._added_processors: list[int] = []
        self.routed_count = 0
        self.routed_bytes = 0
        self.dropped_to_dead = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """PCN's ``sys:num_nodes``."""
        return len(self._processors)

    def processor(self, number: int) -> VirtualProcessor:
        try:
            return self._processors[number]
        except IndexError:
            raise ValueError(
                f"processor {number} out of range 0..{self.num_nodes - 1}"
            ) from None

    def processors(self) -> list[VirtualProcessor]:
        return list(self._processors)

    def add_processor(self) -> int:
        """Grow the machine by one virtual processor at runtime.

        The new VP joins with the next free number, an empty mailbox, and
        no failure history; it is immediately routable (the transport
        stack, kind handlers, and server registry are machine-wide, so no
        per-processor registration is needed) and immediately placeable —
        recovery's spare selection and ``rebalance()`` consider it like
        any original processor.  If an observer is installed its mailbox
        is hooked, so depth/wait metrics cover the newcomer too.

        Returns the new processor number.
        """
        with self._lock:
            number = len(self._processors)
            node = VirtualProcessor(number, self)
            self._processors.append(node)
            self._added_processors.append(number)
            observer = self._observer
        if observer is not None and getattr(observer, "metrics_enabled", False):
            node.mailbox.obs_hooks = observer
        return number

    # -- failure semantics ----------------------------------------------------

    def fail(self, number: int) -> None:
        """Mark processor ``number`` dead.

        Poisons its mailbox so every blocked receiver raises
        :class:`ProcessorFailedError` immediately (no hang until the recv
        deadline); later sends/receives/placements involving the node fail
        per the machine's policy.  Idempotent: a second ``fail`` of an
        already-dead processor is a no-op, so failure listeners observe
        each death exactly once.
        """
        node = self.processor(number)
        with self._lock:
            if number in self._failed:
                return
            self._failed.add(number)
            listeners = list(self._failure_listeners)
        node.mailbox.poison(
            ProcessorFailedError(
                f"processor {number} failed", processor=number
            )
        )
        # Fail-fast for peers: wake any receiver elsewhere that is
        # suspended waiting specifically on the dead node.  Snapshot the
        # processor list — add_processor may grow it concurrently.
        for other in list(self._processors):
            if other.number != number:
                other.mailbox.mark_source_dead(number)
        # Notify outside the machine lock: listeners (e.g. the recovery
        # coordinator) route messages of their own.  A listener failure
        # must not corrupt the transport path that triggered the kill.
        for listener in listeners:
            try:
                listener(number)
            except Exception:  # noqa: BLE001
                pass

    def revive(self, number: int) -> None:
        """Bring a failed processor back (fresh mailbox state is *not*
        restored — buffered messages survive; only the dead flag clears)."""
        node = self.processor(number)
        with self._lock:
            self._failed.discard(number)
        node.mailbox.unpoison()
        for other in list(self._processors):
            if other.number != number:
                other.mailbox.mark_source_alive(number)

    def is_failed(self, number: int) -> bool:
        with self._lock:
            return number in self._failed

    def is_unavailable(self, number: int) -> bool:
        """Oracle-dead *or* declared dead by the installed failure
        detector.  Planning code (recovery spare selection, migration
        membership rewrites, rebalance pools) keys off this so a VP the
        detector has given up on is excluded even though the oracle never
        killed it; hard route semantics (`is_failed`) are unchanged — the
        detector may be wrong, and a misrouted raise would turn a false
        suspicion into a real failure."""
        if self.is_failed(number):
            return True
        health = self._health
        return health is not None and health.is_dead(number)

    def failed_processors(self) -> list[int]:
        with self._lock:
            return sorted(self._failed)

    def add_failure_listener(self, listener: Callable[[int], None]) -> None:
        """Subscribe to processor deaths; ``listener(number)`` runs
        synchronously inside :meth:`fail`.  Adding the same listener twice
        is a no-op, so nested installations — e.g. two supervised calls
        both installing recovery — never double a death notification.
        Deduplication uses ``==``, not ``is``: each attribute access on a
        bound method builds a fresh object, so identity checks would let
        ``add(obj.handler); add(obj.handler)`` register twice and leave
        ``remove(obj.handler)`` unable to find it."""
        with self._lock:
            if all(fn != listener for fn in self._failure_listeners):
                self._failure_listeners.append(listener)

    def remove_failure_listener(self, listener: Callable[[int], None]) -> None:
        with self._lock:
            self._failure_listeners = [
                fn for fn in self._failure_listeners if fn != listener
            ]

    def check_alive(self, processors) -> None:
        """Raise :class:`ProcessorFailedError` if any listed VP is dead."""
        with self._lock:
            dead = [int(p) for p in processors if int(p) in self._failed]
        if dead:
            raise ProcessorFailedError(
                f"processor(s) {dead} failed", processor=dead[0]
            )

    # -- transport -----------------------------------------------------------

    def deliver(self, message: Message) -> None:
        """Final delivery — beneath the interceptor stack.

        Messages addressed to a dead processor vanish here regardless of
        policy — the destination can never consume them.
        """
        self._deliver(message)

    def _deliver(self, message: Message) -> None:
        if self.is_failed(message.dest):
            with self._lock:
                self.dropped_to_dead += 1
            return
        with self._lock:
            handler = self._kind_handlers.get(message.kind)
        if handler is not None:
            handler(message)
            return
        self.processor(message.dest).mailbox.deliver(message)

    def register_kind_handler(
        self, kind: str, handler: Callable[[Message], None]
    ) -> None:
        """Route messages of envelope ``kind`` to ``handler`` at final
        delivery instead of the destination mailbox."""
        with self._lock:
            self._kind_handlers[kind] = handler

    def route(self, message: Message) -> None:
        """The single routing choke point: validate, stamp the envelope,
        account, and dispatch down the interceptor stack to delivery."""
        self.processor(message.dest)  # validate range
        if self.is_failed(message.source):
            raise ProcessorFailedError(
                f"send from failed processor {message.source}",
                processor=message.source,
            )
        if self.is_failed(message.dest):
            if self.dead_send_policy == "raise":
                raise ProcessorFailedError(
                    f"send to failed processor {message.dest}",
                    processor=message.dest,
                )
            # "drop" and "queue" both discard sends to an oracle-dead
            # destination: queueing is for *suspects*, whose death is
            # unconfirmed; the oracle is ground truth.
            with self._lock:
                self.dropped_to_dead += 1
            return
        health = self._health
        if (
            self.dead_send_policy == "queue"
            and health is not None
            and message.kind not in ("heartbeat", "rejoin")
            and health.is_suspect(message.dest)
        ):
            # Buffer instead of transmitting into suspected silence.  The
            # queue flushes (re-routes) when the suspect proves alive or
            # rejoins, and drains to dropped_to_dead when the verdict
            # hardens to dead.  Heartbeats are exempt (they *are* the
            # evidence the verdict rests on), as is the rejoin protocol
            # (it must reach the quarantined VP to end the quarantine).
            with self._lock:
                self._suspect_queues.setdefault(message.dest, []).append(
                    message
                )
            return
        if message.source == message.dest and len(self.transport_stack) == 0:
            # Same-node fast path: with no interceptors installed nothing
            # between route and delivery can observe the envelope, so the
            # trace-stamping copy and the interceptor dispatch are pure
            # overhead — skip both.  Counters still advance (the cost
            # model stays exact), and any installed interceptor (tracer,
            # meter, fault plan, observer) disables the path by making
            # the stack non-empty.
            with self._lock:
                self.routed_count += 1
                self.routed_bytes += message.nbytes()
            self._deliver(message)
            return
        if message.trace_id is None:
            # Stamp the envelope from the sender's execution context.  A
            # top-level send with no ambient trace gets a synthesized root
            # id — no message is ever attributed to trace None.
            trace_id, hop = fabric.current_trace()
            message = dataclasses.replace(
                message,
                trace_id=trace_id if trace_id is not None else fabric.new_trace_id(),
                hop=hop,
                span_id=fabric.current_span_id(),
            )
        with self._lock:
            self.routed_count += 1
            self.routed_bytes += message.nbytes()
        self.transport_stack.dispatch(message)

    def flush_suspect_queue(self, dest: int) -> int:
        """Re-route sends buffered for a once-suspected destination (the
        "queue" policy's heal path).  Returns the number re-routed; a
        message whose source died while buffered is dropped and counted."""
        with self._lock:
            queued = self._suspect_queues.pop(dest, None)
        if not queued:
            return 0
        flushed = 0
        for message in queued:
            try:
                self.route(message)
                flushed += 1
            except ProcessorFailedError:
                with self._lock:
                    self.dropped_to_dead += 1
        return flushed

    def drop_suspect_queue(self, dest: int) -> int:
        """Discard sends buffered for a destination whose suspicion
        hardened into a dead verdict; they join ``dropped_to_dead``."""
        with self._lock:
            queued = self._suspect_queues.pop(dest, None)
            if not queued:
                return 0
            self.dropped_to_dead += len(queued)
            return len(queued)

    def send(
        self,
        source: int,
        dest: int,
        payload: Any,
        mtype: MessageType = MessageType.PCN,
        tag: Hashable = None,
        group: Optional[Hashable] = None,
    ) -> None:
        """Convenience: build and route one message."""
        self.processor(source).send(
            Message(
                source=source,
                dest=dest,
                payload=payload,
                mtype=mtype,
                tag=tag,
                group=group,
            )
        )

    # -- traffic accounting ----------------------------------------------------

    def traffic_snapshot(self) -> dict[str, int]:
        """Exact message/byte counters (GIL-independent cost model)."""
        with self._lock:
            return {
                "messages": self.routed_count,
                "bytes": self.routed_bytes,
            }

    def reset_traffic(self) -> None:
        with self._lock:
            self.routed_count = 0
            self.routed_bytes = 0
        for node in self._processors:
            node.reset_traffic_counters()

    # -- observability ---------------------------------------------------------

    def observe(self, **options: Any) -> Any:
        """Enable runtime telemetry; returns the installed
        :class:`~repro.obs.observer.Observer`.

        One call turns on the causal span layer, the metrics registry
        (mailbox depth/wait, process churn, DefVar suspensions, fault and
        replica counters), and the per-message event log.  Options are
        forwarded to the Observer (``spans=``, ``metrics=``, ``messages=``,
        ``max_spans=``, ``max_events=``).  Idempotent: a second call
        returns the already-installed observer.  ``observer.close()``
        removes every hook.
        """
        if self._observer is not None:
            return self._observer
        from repro.obs.observer import Observer

        return Observer(self, **options).install()

    @property
    def observer(self) -> Optional[Any]:
        return self._observer

    # -- diagnostics -----------------------------------------------------------

    def diagnostics(self) -> dict[str, Any]:
        """A snapshot of machine health for operators and tests.

        Reports dead processors, per-node pending (undelivered-to-user)
        message counts, currently-blocked receivers, and live process
        counts — the §4.1.2 goal of making partial failure observable.
        """
        pending = {}
        blocked = []
        live = {}
        for node in list(self._processors):
            count = node.mailbox.pending()
            if count:
                pending[node.number] = count
            for ident, describe in node.mailbox.blocked_receivers().items():
                blocked.append(
                    {
                        "processor": node.number,
                        "thread": ident,
                        "waiting_for": describe,
                    }
                )
            alive = node.live_process_count()
            if alive:
                live[node.number] = alive
        manager = getattr(self, "_array_manager", None)
        arrays = (
            manager.durability_diagnostics() if manager is not None else {}
        )
        observability = (
            self._observer.diagnostics()
            if self._observer is not None
            else {"enabled": False}
        )
        perf_layer = getattr(self, "_perf", None)
        perf = (
            perf_layer.diagnostics()
            if perf_layer is not None
            else {"enabled": False}
        )
        health = (
            self._health.snapshot()
            if self._health is not None
            else {"enabled": False}
        )
        with self._lock:
            suspect_queued = {
                dest: len(queued)
                for dest, queued in self._suspect_queues.items()
                if queued
            }
            return {
                "num_nodes": self.num_nodes,
                "failed": sorted(self._failed),
                "added_processors": list(self._added_processors),
                "pending_messages": pending,
                "blocked_receivers": blocked,
                "live_processes": live,
                "routed_messages": self.routed_count,
                "routed_bytes": self.routed_bytes,
                "dropped_to_dead": self.dropped_to_dead,
                "suspect_queued": suspect_queued,
                "arrays": arrays,
                "observability": observability,
                "perf": perf,
                "health": health,
            }

    # -- program placement -----------------------------------------------------

    def run_on(self, processor: int, target: Callable[..., Any], *args: Any,
               **kwargs: Any) -> Any:
        """Execute ``target`` on a processor and wait for the result
        (PCN's ``@Processor`` annotation for program calls)."""
        return self.processor(processor).run(target, *args, **kwargs)

    def __repr__(self) -> str:
        return f"<Machine num_nodes={self.num_nodes}>"
