"""The simulated multicomputer: a fixed set of virtual processors.

``Machine`` owns the processors, routes point-to-point messages between
their mailboxes, and hosts the server registry (§5.1.1).  It substitutes for
the Symult s2010 / Cosmic Environment of the thesis' testbed; see DESIGN.md
for the substitution argument.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Optional

from repro.vp.message import Message, MessageType
from repro.vp.processor import VirtualProcessor
from repro.vp.server import ServerRegistry


class Machine:
    """A multicomputer of ``num_nodes`` virtual processors."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 1:
            raise ValueError("a machine needs at least one processor")
        self._processors = [VirtualProcessor(i, self) for i in range(num_nodes)]
        self.server = ServerRegistry(self)
        self._lock = threading.Lock()
        self.routed_count = 0
        self.routed_bytes = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """PCN's ``sys:num_nodes``."""
        return len(self._processors)

    def processor(self, number: int) -> VirtualProcessor:
        try:
            return self._processors[number]
        except IndexError:
            raise ValueError(
                f"processor {number} out of range 0..{self.num_nodes - 1}"
            ) from None

    def processors(self) -> list[VirtualProcessor]:
        return list(self._processors)

    # -- transport -----------------------------------------------------------

    def route(self, message: Message) -> None:
        """Deliver ``message`` to the destination processor's mailbox."""
        dest = self.processor(message.dest)
        with self._lock:
            self.routed_count += 1
            self.routed_bytes += message.nbytes()
        dest.mailbox.deliver(message)

    def send(
        self,
        source: int,
        dest: int,
        payload: Any,
        mtype: MessageType = MessageType.PCN,
        tag: Hashable = None,
        group: Optional[Hashable] = None,
    ) -> None:
        """Convenience: build and route one message."""
        self.processor(source).send(
            Message(
                source=source,
                dest=dest,
                payload=payload,
                mtype=mtype,
                tag=tag,
                group=group,
            )
        )

    # -- traffic accounting ----------------------------------------------------

    def traffic_snapshot(self) -> dict[str, int]:
        """Exact message/byte counters (GIL-independent cost model)."""
        with self._lock:
            return {
                "messages": self.routed_count,
                "bytes": self.routed_bytes,
            }

    def reset_traffic(self) -> None:
        with self._lock:
            self.routed_count = 0
            self.routed_bytes = 0
        for node in self._processors:
            node.sent_count = 0
            node.sent_bytes = 0
            node.mailbox.received_count = 0
            node.mailbox.received_bytes = 0

    # -- program placement -----------------------------------------------------

    def run_on(self, processor: int, target: Callable[..., Any], *args: Any,
               **kwargs: Any) -> Any:
        """Execute ``target`` on a processor and wait for the result
        (PCN's ``@Processor`` annotation for program calls)."""
        return self.processor(processor).run(target, *args, **kwargs)

    def __repr__(self) -> str:
        return f"<Machine num_nodes={self.num_nodes}>"
