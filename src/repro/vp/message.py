"""Typed point-to-point messages (§3.4.1).

The thesis prevents message conflicts between the task-parallel runtime and
called data-parallel programs by requiring *typed* messages and *selective*
receives, with disjoint type sets for the two layers.  §5.3 describes the
concrete fix applied to the Symult s2010 port: untyped Cosmic Environment
messages were replaced with messages of a "PCN" type and a
"data-parallel-program" type.

We reproduce that design: every message carries a :class:`MessageType`; the
mailbox's selective receive filters on it.  ``MessageType.UNTYPED`` exists
only so the §3.4.1 conflict experiment can demonstrate the failure mode the
typing discipline prevents.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional


class MessageType(enum.Enum):
    """Disjoint message-type sets for the two runtime layers (§3.4.1)."""

    PCN = "pcn"  # task-parallel runtime traffic (server requests, control)
    DATA_PARALLEL = "dp"  # traffic between copies of an SPMD program
    UNTYPED = "untyped"  # legacy Cosmic-Environment style; conflict-prone


_sequence = itertools.count()


@dataclass(frozen=True)
class Message:
    """One point-to-point message.

    ``tag`` subdivides traffic within a type (e.g. per-collective tags in
    the SPMD layer); ``group`` identifies which distributed call's copies
    are communicating, so concurrent distributed calls sharing a processor
    cannot intercept each other's traffic.

    The last three fields are the *fabric envelope*, shared by every
    message regardless of which layer produced it: ``kind`` names the
    routing discipline (``"user"`` mailbox traffic vs ``"server_request"``
    RPC hops), ``trace_id`` ties the message to the logical operation that
    caused it, and ``hop`` counts how many causally-chained messages
    preceded it within that trace.  :meth:`repro.vp.machine.Machine.route`
    stamps ``trace_id``/``hop`` from the sender's execution context when
    the sender did not set them explicitly.
    """

    source: int
    dest: int
    payload: Any
    mtype: MessageType = MessageType.PCN
    tag: Hashable = None
    group: Optional[Hashable] = None
    seq: int = field(default_factory=lambda: next(_sequence))
    kind: str = "user"
    trace_id: Optional[str] = None
    hop: int = 0
    # The observability span that sent the message (None when observation
    # is off or the sender ran outside any span).  Stamped by Machine.route
    # alongside trace_id; lets span-level traces and per-message records be
    # stitched without guessing.
    span_id: Optional[str] = None

    def matches(
        self,
        mtype: Optional[MessageType],
        tag: Hashable = None,
        source: Optional[int] = None,
        group: Optional[Hashable] = None,
        match_any_tag: bool = False,
        match_any_group: bool = False,
    ) -> bool:
        """Selective-receive predicate."""
        if mtype is not None and self.mtype is not mtype:
            return False
        if not match_any_tag and self.tag != tag:
            return False
        if source is not None and self.source != source:
            return False
        if not match_any_group and self.group != group:
            return False
        return True

    def nbytes(self) -> int:
        """Approximate payload size, for simulated-traffic accounting."""
        payload = self.payload
        if hasattr(payload, "nbytes"):
            return int(payload.nbytes)
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, (list, tuple)):
            return 8 * len(payload)
        return 8
