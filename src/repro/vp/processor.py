"""Virtual processors (Preface "Terminology and conventions").

A virtual processor is a persistent entity with a distinct address space.
Here the address space is a private ``heap`` dict plus whatever storage the
array manager allocates on the node; separation is enforced by the API (no
processor object hands out another processor's heap) and checked by tests.

Processes are mapped to processors by spawning them *on* a processor; this
models the thesis' assignment of processes to virtual processors while the
underlying OS threads share one real address space.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.pcn.process import Process
from repro.vp import fabric
from repro.vp.mailbox import Mailbox


class VirtualProcessor:
    """One node of the simulated machine."""

    def __init__(self, number: int, machine: "Machine") -> None:  # noqa: F821
        self.number = number
        self.machine = machine
        self.mailbox = Mailbox(
            owner=number,
            default_timeout=getattr(machine, "default_recv_timeout", None),
        )
        # The node's private address space.  Only code executing "on" this
        # processor may touch it; cross-node access must use messages or
        # server requests.
        self.heap: dict[str, Any] = {}
        self._heap_lock = threading.RLock()
        self._processes: list[Process] = []
        self._processes_lock = threading.Lock()
        self.sent_count = 0
        self.sent_bytes = 0

    # -- process placement --------------------------------------------------

    def spawn(
        self, target: Callable[..., Any], *args: Any, name: str = "", **kwargs: Any
    ) -> Process:
        """Create and start a process assigned to this processor.

        Placement on a dead processor fails immediately: a crashed node
        cannot host new processes (§4.1.2 failure-as-value discipline).
        """
        if self.machine is not None and self.machine.is_failed(self.number):
            from repro.status import ProcessorFailedError

            raise ProcessorFailedError(
                f"cannot spawn on failed processor {self.number}",
                processor=self.number,
            )
        # The child runs under this processor's fabric context, inheriting
        # the spawner's trace envelope (and open observability span) so
        # causally-related messages share a trace id across process
        # boundaries and child spans parent onto the spawner's.
        _, trace_id, hop, span_id = fabric.snapshot_context()

        def placed(*a: Any, **kw: Any) -> Any:
            with fabric.execution_context(
                processor=self.number, trace_id=trace_id, hop=hop,
                span_id=span_id,
            ):
                return target(*a, **kw)

        proc = Process(
            placed,
            args=args,
            kwargs=kwargs,
            name=name or f"vp{self.number}-proc",
            processor=self.number,
        ).start()
        with self._processes_lock:
            self._processes = [p for p in self._processes if p.is_alive()]
            self._processes.append(proc)
            live = len(self._processes)
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.process_spawned(self.number, live)
        return proc

    def run(self, target: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``target`` on this processor and wait for its result."""
        return self.spawn(target, *args, **kwargs).join()

    def live_process_count(self) -> int:
        with self._processes_lock:
            self._processes = [p for p in self._processes if p.is_alive()]
            return len(self._processes)

    # -- address space ------------------------------------------------------

    def store(self, key: str, value: Any) -> None:
        with self._heap_lock:
            self.heap[key] = value

    def load(self, key: str) -> Any:
        with self._heap_lock:
            return self.heap[key]

    def load_default(self, key: str, default: Any = None) -> Any:
        with self._heap_lock:
            return self.heap.get(key, default)

    def delete(self, key: str) -> None:
        with self._heap_lock:
            self.heap.pop(key, None)

    def has(self, key: str) -> bool:
        with self._heap_lock:
            return key in self.heap

    # -- communication -------------------------------------------------------

    def send(self, message: "Message") -> None:  # noqa: F821
        """Send a message; routing is done by the machine's transport."""
        self.sent_count += 1
        self.sent_bytes += message.nbytes()
        self.machine.route(message)

    def reset_traffic_counters(self) -> None:
        """Zero this node's traffic accounting (send side + mailbox)."""
        self.sent_count = 0
        self.sent_bytes = 0
        self.mailbox.reset_traffic_counters()

    def __repr__(self) -> str:
        return f"<VirtualProcessor {self.number}>"
