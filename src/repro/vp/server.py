"""The PCN server mechanism (§5.1.1).

Any program can communicate with the local server process via a *server
request*.  Modules loaded with a *capabilities* directive extend the server:
requests whose type appears in the directive are routed to the module's
server program as a tuple ``(request_type, *request_parameters)``.

Routing a request to another processor is done with the ``@processor``
annotation — here the ``processor=`` argument of
:meth:`ServerRegistry.request`.  Bidirectional communication happens when a
request parameter is an undefined definitional variable the server program
defines (e.g. the ``Status`` of a ``free_array`` request).

Cross-processor requests ride the message fabric: when the requesting
thread of control executes on a different virtual processor than the
request's target (or passes ``source=`` explicitly), the request is routed
as a ``kind="server_request"`` :class:`~repro.vp.message.Message` through
:meth:`Machine.route` and the full interceptor stack — so server RPC is
subject to the same tracing, accounting, and fault injection as every
other message, and costs exactly one routed message per hop.  Requests
whose origin *is* the target node (and requests from unplaced top-level
threads, which the thesis treats as running "on" the local node) execute
locally without any message, matching §5.1.1's local-server semantics.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.pcn.defvar import DefVar
from repro.vp import fabric
from repro.vp.message import Message

Handler = Callable[..., None]


class ServerRequestError(Exception):
    """No loaded module provides the requested capability."""


class _ServerCall:
    """Payload of a routed ``server_request`` message.

    Completion flows back through definitional variables (§5.1.1's
    bidirectional-communication idiom) rather than a reply message:
    ``done`` carries the synchronous outcome, ``proc_out`` the spawned
    handler process for asynchronous requests.
    """

    __slots__ = ("request_type", "parameters", "synchronous", "done", "proc_out")

    def __init__(
        self,
        request_type: str,
        parameters: tuple,
        synchronous: bool,
        done: Optional[DefVar],
        proc_out: Optional[DefVar],
    ) -> None:
        self.request_type = request_type
        self.parameters = parameters
        self.synchronous = synchronous
        self.done = done
        self.proc_out = proc_out

    def __repr__(self) -> str:
        return f"<server call {self.request_type!r}>"


class ServerRegistry:
    """Per-machine registry of server capabilities.

    One logical server process exists per processor; because capability
    handlers are registered machine-wide but *execute on* the target
    processor (they receive the local :class:`VirtualProcessor`), a single
    registry suffices.
    """

    def __init__(self, machine: "Machine") -> None:  # noqa: F821
        self._machine = machine
        self._capabilities: dict[str, Handler] = {}
        self._lock = threading.Lock()

    def load(self, capabilities: dict[str, Handler]) -> None:
        """Load a module: add its capabilities to the server (§5.1.1)."""
        with self._lock:
            self._capabilities.update(capabilities)

    def provides(self, request_type: str) -> bool:
        with self._lock:
            return request_type in self._capabilities

    def request(
        self,
        request_type: str,
        *parameters: Any,
        processor: Optional[int] = None,
        synchronous: bool = True,
        timeout: Optional[float] = None,
        source: Optional[int] = None,
        kind: str = "server_request",
    ) -> Optional[Any]:
        """Issue a server request.

        ``processor`` is the ``@Processor_number`` annotation: the request
        executes on that node (default: processor 0, the "local" node for
        top-level callers).  When ``synchronous`` the request runs to
        completion before returning — matching the library-procedure
        discipline of §5.1.2, where each library procedure waits for its
        request to be serviced.  With ``synchronous=False`` the request
        completes immediately as a statement and the handler runs as a
        separate process, which is the raw server-request semantics of
        §5.1.1 — the spawned :class:`~repro.pcn.process.Process` is
        returned so callers can join it with the machine's receive
        deadline.

        ``source`` names the requesting processor explicitly; when omitted
        it is taken from the calling thread's execution context (the node
        the thread was spawned on).  A request whose origin differs from
        the target node is a *cross-processor hop*: it is shipped as one
        ``server_request`` message through :meth:`Machine.route` and the
        interceptor stack.  Origin-less (top-level) and same-node requests
        execute locally with no message.

        ``timeout`` bounds how long a synchronous request may take; None
        inherits the machine's ``default_recv_timeout`` behaviour.
        Requests addressed to a dead processor raise
        :class:`~repro.status.ProcessorFailedError` immediately.

        ``kind`` names the fabric envelope kind of the routed hop (default
        ``"server_request"``); recovery traffic uses ``"recovery"`` so
        interceptors and meters can distinguish it.  Any kind used here
        must be registered on the machine to execute as a server call.
        """
        with self._lock:
            handler = self._capabilities.get(request_type)
        if handler is None:
            raise ServerRequestError(
                f"no capability registered for request type {request_type!r}"
            )
        number = 0 if processor is None else processor
        self._machine.check_alive([number])
        origin = source if source is not None else fabric.current_processor()
        if origin is not None and origin != number:
            return self._request_remote(
                request_type, parameters, origin, number, synchronous,
                timeout, kind,
            )
        node = self._machine.processor(number)
        if synchronous:
            if timeout is not None:
                proc = node.spawn(
                    handler, node, *parameters,
                    name=f"server-{request_type}",
                )
                proc.join(timeout=timeout)
                return None
            with fabric.execution_context(processor=number):
                handler(node, *parameters)
            return None
        return node.spawn(
            handler, node, *parameters, name=f"server-{request_type}"
        )

    def _request_remote(
        self,
        request_type: str,
        parameters: tuple,
        origin: int,
        number: int,
        synchronous: bool,
        timeout: Optional[float],
        kind: str = "server_request",
    ) -> Optional[Any]:
        """Ship the request as one routed message from origin to target."""
        done = DefVar(f"server-{request_type}-done") if synchronous else None
        proc_out = (
            None if synchronous else DefVar(f"server-{request_type}-proc")
        )
        call = _ServerCall(request_type, parameters, synchronous, done, proc_out)
        self._machine.processor(origin).send(
            Message(
                source=origin,
                dest=number,
                payload=call,
                tag=("server", request_type),
                kind=kind,
            )
        )
        limit = (
            timeout
            if timeout is not None
            else self._machine.default_recv_timeout
        )
        if synchronous:
            state, error = done.read(timeout=limit)
            if state == "error":
                raise error
            return None
        return proc_out.read(timeout=limit)

    def _execute(self, message: Message) -> None:
        """Service one delivered ``server_request`` message at its target.

        Called beneath the interceptor stack by the machine's final
        delivery; the handler runs under the target node's execution
        context with the message's trace envelope (hop + 1), so nested
        requests it issues are causally chained onto the same trace.
        """
        call: _ServerCall = message.payload
        # Exactly-once servicing: a duplicated delivery (fault injection)
        # carries the same call whose outcome variable is already
        # defined — re-running the handler would double-apply it and
        # double-define ``done``.
        outcome = call.done if call.synchronous else call.proc_out
        if outcome is not None and outcome.data():
            return
        node = self._machine.processor(message.dest)
        with self._lock:
            handler = self._capabilities.get(call.request_type)
        # span_id: the handler's spans parent onto the requester's open
        # span (carried on the message), not onto whatever span the
        # delivering thread happens to be inside.
        context = fabric.execution_context(
            processor=message.dest,
            trace_id=message.trace_id,
            hop=message.hop + 1,
            span_id=message.span_id,
        )
        if handler is None:
            exc: BaseException = ServerRequestError(
                f"no capability registered for request type "
                f"{call.request_type!r}"
            )
            if call.done is not None:
                call.done.define(("error", exc))
            return
        if call.synchronous:
            try:
                with context:
                    handler(node, *call.parameters)
            except BaseException as exc:  # noqa: BLE001 - crosses the hop
                call.done.define(("error", exc))
            else:
                call.done.define(("ok", None))
            return
        with context:
            proc = node.spawn(
                handler, node, *call.parameters,
                name=f"server-{call.request_type}",
            )
        call.proc_out.define(proc)
