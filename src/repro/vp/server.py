"""The PCN server mechanism (§5.1.1).

Any program can communicate with the local server process via a *server
request*.  Modules loaded with a *capabilities* directive extend the server:
requests whose type appears in the directive are routed to the module's
server program as a tuple ``(request_type, *request_parameters)``.

Routing a request to another processor is done with the ``@processor``
annotation — here the ``processor=`` argument of
:meth:`ServerRegistry.request`.  Bidirectional communication happens when a
request parameter is an undefined definitional variable the server program
defines (e.g. the ``Status`` of a ``free_array`` request).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

Handler = Callable[..., None]


class ServerRequestError(Exception):
    """No loaded module provides the requested capability."""


class ServerRegistry:
    """Per-machine registry of server capabilities.

    One logical server process exists per processor; because capability
    handlers are registered machine-wide but *execute on* the target
    processor (they receive the local :class:`VirtualProcessor`), a single
    registry suffices.
    """

    def __init__(self, machine: "Machine") -> None:  # noqa: F821
        self._machine = machine
        self._capabilities: dict[str, Handler] = {}
        self._lock = threading.Lock()

    def load(self, capabilities: dict[str, Handler]) -> None:
        """Load a module: add its capabilities to the server (§5.1.1)."""
        with self._lock:
            self._capabilities.update(capabilities)

    def provides(self, request_type: str) -> bool:
        with self._lock:
            return request_type in self._capabilities

    def request(
        self,
        request_type: str,
        *parameters: Any,
        processor: Optional[int] = None,
        synchronous: bool = True,
        timeout: Optional[float] = None,
    ) -> Optional[Any]:
        """Issue a server request.

        ``processor`` is the ``@Processor_number`` annotation: the request
        executes on that node (default: processor 0, the "local" node for
        top-level callers).  When ``synchronous`` the handler runs to
        completion on the caller's thread-of-control before returning —
        matching the library-procedure discipline of §5.1.2, where each
        library procedure waits for its request to be serviced.  With
        ``synchronous=False`` the request completes immediately as a
        statement and the handler runs as a separate process, which is the
        raw server-request semantics of §5.1.1 — the spawned
        :class:`~repro.pcn.process.Process` is returned so callers can
        join it with the machine's receive deadline.

        ``timeout`` bounds the synchronous case by joining the handler as
        a process instead of running it inline; None inherits the
        machine's ``default_recv_timeout`` behaviour (inline execution).
        Requests addressed to a dead processor raise
        :class:`~repro.status.ProcessorFailedError` immediately.
        """
        with self._lock:
            handler = self._capabilities.get(request_type)
        if handler is None:
            raise ServerRequestError(
                f"no capability registered for request type {request_type!r}"
            )
        number = 0 if processor is None else processor
        self._machine.check_alive([number])
        node = self._machine.processor(number)
        if synchronous:
            if timeout is not None:
                proc = node.spawn(
                    handler, node, *parameters,
                    name=f"server-{request_type}",
                )
                proc.join(timeout=timeout)
                return None
            handler(node, *parameters)
            return None
        return node.spawn(
            handler, node, *parameters, name=f"server-{request_type}"
        )
