"""Virtual-processor machine substrate.

The thesis maps programs onto *virtual processors* — persistent entities
with distinct address spaces, identified by processor numbers (Preface,
"Terminology and conventions").  This package simulates such a machine:

* :class:`~repro.vp.processor.VirtualProcessor` — one node: a private heap,
  a typed-message mailbox, and the ability to run processes.
* :class:`~repro.vp.machine.Machine` — a fixed set of virtual processors
  plus the PCN server mechanism (§5.1.1) used by the array manager.
* :class:`~repro.vp.mailbox.Mailbox` — point-to-point typed messages with
  selective receive, the conflict-avoidance design of §3.4.1.
"""

from repro.vp.message import Message, MessageType
from repro.vp.mailbox import Mailbox
from repro.vp.processor import VirtualProcessor
from repro.vp.machine import Machine
from repro.vp.server import ServerRegistry, ServerRequestError

__all__ = [
    "Message",
    "MessageType",
    "Mailbox",
    "VirtualProcessor",
    "Machine",
    "ServerRegistry",
    "ServerRequestError",
]
