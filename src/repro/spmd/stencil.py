"""Border-exchange stencil kernels (overlap areas, §3.2.1.3).

The thesis supports Fortran-D-style *borders* around local sections "to be
used internally by the data-parallel program ... as communication buffers"
(§3.2.1.3).  This module is the data-parallel program family that actually
uses them: 5-point Jacobi relaxation on a 2-D domain, with each sweep
exchanging edge data into the neighbours' border cells.

These kernels power the FIG-2.1 climate experiment (ocean/atmosphere
subdomains are each a bordered distributed array relaxed by these programs)
and the ABL-1 decomposition-shape ablation (halo traffic of ``(block,
block)`` vs ``(block, "*")`` grids).

Distribution contract: the array is 2-D, distributed over a ``gr x gc``
processor grid with row-major grid indexing (copy ``index`` sits at grid
coordinates ``divmod(index, gc)``), with borders of at least 1 in every
direction.  Domain edges are Dirichlet: border cells on the physical
boundary hold fixed values the kernel never overwrites.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.arrays.local_section import LocalSection
from repro.spmd import collectives
from repro.spmd.context import OutCell, SPMDContext
from repro.spmd.linalg import interior


def _full(section: Union[LocalSection, np.ndarray]) -> np.ndarray:
    if isinstance(section, LocalSection):
        if min(section.borders) < 1:
            raise ValueError(
                "stencil kernels need borders >= 1 in every direction "
                f"(got {section.borders}); create the array with "
                "Border_info=[1,1,1,1] or foreign_borders"
            )
        return section.full()
    return np.asarray(section)


def grid_coords(index: int, grid_cols: int) -> tuple[int, int]:
    """Copy index -> (row, col) on the row-major processor grid."""
    return divmod(index, grid_cols)


def border_query(parm_num: int, rank: int) -> tuple[int, ...]:
    """``foreign_borders`` protocol (§5.1.7): every array parameter of the
    stencil programs needs a 1-deep border on each side."""
    return (1,) * (2 * rank)


def exchange_halos(
    ctx: SPMDContext,
    full: np.ndarray,
    grid_rows: int,
    grid_cols: int,
) -> int:
    """Swap 1-deep edge strips with the four grid neighbours.

    Returns the number of messages sent (the ABL-1 traffic metric).
    Communication is deadlock-free because sends never block: every copy
    posts all sends, then receives selectively by tag and source.
    """
    expected = grid_rows * grid_cols
    if expected != len(ctx.procs):
        raise ValueError(
            f"exchange_halos: processor grid {grid_rows}x{grid_cols} "
            f"implies {expected} copies, but this distributed call has "
            f"{len(ctx.procs)} (section shape "
            f"{getattr(full, 'shape', None)}); the grid arguments must "
            "match the array layout's owner count"
        )
    r, c = grid_coords(ctx.index, grid_cols)
    sent = 0
    neighbours = {
        "north": (r - 1, c) if r > 0 else None,
        "south": (r + 1, c) if r + 1 < grid_rows else None,
        "west": (r, c - 1) if c > 0 else None,
        "east": (r, c + 1) if c + 1 < grid_cols else None,
    }
    strips = {
        "north": full[1, 1:-1].copy(),
        "south": full[-2, 1:-1].copy(),
        "west": full[1:-1, 1].copy(),
        "east": full[1:-1, -2].copy(),
    }
    opposite = {"north": "south", "south": "north", "west": "east", "east": "west"}
    for side, coords in neighbours.items():
        if coords is None:
            continue
        dest_rank = coords[0] * grid_cols + coords[1]
        # Tag by the side the *receiver* will see it on.
        ctx.comm.send(dest_rank, strips[side], tag=("halo", opposite[side]))
        sent += 1
    for side, coords in neighbours.items():
        if coords is None:
            continue
        src_rank = coords[0] * grid_cols + coords[1]
        strip = ctx.comm.recv(source_rank=src_rank, tag=("halo", side))
        if side == "north":
            full[0, 1:-1] = strip
        elif side == "south":
            full[-1, 1:-1] = strip
        elif side == "west":
            full[1:-1, 0] = strip
        else:
            full[1:-1, -1] = strip
    return sent


def jacobi_sweep(full: np.ndarray) -> np.ndarray:
    """One 5-point Jacobi relaxation over the interior; returns the new
    interior (does not write it back)."""
    return 0.25 * (
        full[:-2, 1:-1] + full[2:, 1:-1] + full[1:-1, :-2] + full[1:-1, 2:]
    )


def _sweep_region(
    full: np.ndarray, r0: int, r1: int, c0: int, c1: int
) -> np.ndarray:
    """5-point Jacobi update of ``full[r0:r1, c0:c1]`` (reads the +-1
    frame around it).  Operand order matches :func:`jacobi_sweep` exactly,
    so the planned path's frame computations are bit-identical to a
    neighbour's interior update of the same cells."""
    return 0.25 * (
        full[r0 - 1:r1 - 1, c0:c1]
        + full[r0 + 1:r1 + 1, c0:c1]
        + full[r0:r1, c0 - 1:c1 - 1]
        + full[r0:r1, c0 + 1:c1 + 1]
    )


def _plan_for(ctx: SPMDContext, section, gr: int, gc: int):
    """Resolve ``(record, plan, registry)`` for the planned heat path, or
    None when it cannot engage: raw ndarray, unmanaged section, no perf
    layer, planning disabled, grid mismatch, or unsupported geometry.
    Every input to this decision is machine-global or layout-derived, so
    all copies of one call take the same branch."""
    if not isinstance(section, LocalSection):
        return None
    machine = ctx.machine
    perf = getattr(machine, "_perf", None)
    manager = getattr(machine, "_array_manager", None)
    plans = getattr(perf, "plans", None)
    if plans is None or manager is None or not plans.enabled:
        return None
    record = manager.record_for_section(ctx.node, section)
    if record is None:
        return None
    layout = record.layout
    if layout.rank != 2 or tuple(layout.grid) != (gr, gc):
        return None
    plan = plans.halo_plan("stencil5", record.array_id)
    if plan is None:
        return None
    return record, plan, plans


def _heat_steps_planned(
    ctx: SPMDContext,
    record,
    plan,
    registry,
    full: np.ndarray,
    n_steps: int,
) -> float:
    """Jacobi relaxation on the planned path: deep-halo phases.

    Each phase exchanges once at depth ``k = min(plan.depth, remaining)``
    and then runs ``k`` sweeps; sweep ``j`` updates the local region
    extended by ``k-1-j`` cells toward every neighbour (never past a
    physical edge).  The extension cells redundantly recompute what the
    neighbour computes for its own interior — same arithmetic, same
    values — so the result is bit-identical to exchanging every sweep,
    while the interior of sweep 0 overlaps with the in-flight halo
    traffic between ``prefetch()`` and ``complete()``.
    """
    layout = record.layout
    d = plan.pad
    h, w = layout.local_dims
    section = record.section_number_for(ctx.processor_number)
    coords = layout.section_coords(section)
    ext_n = coords[0] > 0
    ext_s = coords[0] + 1 < layout.grid[0]
    ext_w = coords[1] > 0
    ext_e = coords[1] + 1 < layout.grid[1]
    delta = 0.0
    done_steps = 0
    phase = 0
    while done_steps < n_steps:
        k = min(plan.depth, n_steps - done_steps)
        exchange = plan.begin(
            registry, record, full, section, k,
            (ctx.group, phase), ctx.processor_number,
        )
        exchange.prefetch()
        # Overlap: the sweep-0 inner block reads interior cells only, so
        # it can run while the halo strips are in flight.
        inner = None
        if h > 2 and w > 2:
            inner = _sweep_region(full, d + 1, d + h - 1, d + 1, d + w - 1)
        exchange.complete()
        for j in range(k):
            e = k - 1 - j
            r0 = d - (e if ext_n else 0)
            r1 = d + h + (e if ext_s else 0)
            c0 = d - (e if ext_w else 0)
            c1 = d + w + (e if ext_e else 0)
            if j == 0 and inner is not None:
                new = np.empty((r1 - r0, c1 - c0), dtype=full.dtype)
                new[d + 1 - r0:d + h - 1 - r0,
                    d + 1 - c0:d + w - 1 - c0] = inner
                # The frame around the inner block reads halo cells, so
                # it runs after complete().
                new[:d + 1 - r0, :] = _sweep_region(full, r0, d + 1, c0, c1)
                new[d + h - 1 - r0:, :] = _sweep_region(
                    full, d + h - 1, r1, c0, c1
                )
                new[d + 1 - r0:d + h - 1 - r0, :d + 1 - c0] = _sweep_region(
                    full, d + 1, d + h - 1, c0, d + 1
                )
                new[d + 1 - r0:d + h - 1 - r0,
                    d + w - 1 - c0:] = _sweep_region(
                    full, d + 1, d + h - 1, d + w - 1, c1
                )
            else:
                new = _sweep_region(full, r0, r1, c0, c1)
            if done_steps + j == n_steps - 1:
                delta = float(np.max(np.abs(
                    new[d - r0:d + h - r0, d - c0:d + w - c0]
                    - full[d:d + h, d:d + w]
                )))
            full[r0:r1, c0:c1] = new
        done_steps += k
        phase += 1
    return delta


def heat_steps(
    ctx: SPMDContext,
    grid_rows,
    grid_cols,
    steps,
    section: Union[LocalSection, np.ndarray],
    delta_out: Optional[Union[OutCell, np.ndarray]] = None,
) -> None:
    """Run ``steps`` Jacobi sweeps of the heat equation on a bordered
    distributed array.

    Precondition: section has borders >= 1; domain-edge border cells hold
    the Dirichlet boundary values.  Postcondition: the interior holds the
    relaxed field; ``delta_out`` (if given) the global max |change| of the
    final sweep — the convergence measure.

    When the section belongs to a managed distributed array and the
    machine carries a perf layer, the sweeps run on the *planned* path:
    precompiled ``halo_bulk`` transfers (one fused message per neighbour
    per phase), interior compute overlapped with in-flight halo traffic,
    and — with borders deeper than 1 — one exchange amortised over that
    many sweeps (:mod:`repro.perf.commplan`).  The per-sweep
    ``exchange_halos`` path remains the fallback for raw ndarrays and
    unmanaged sections, and is bit-identical in results.
    """
    gr = int(grid_rows[0]) if hasattr(grid_rows, "__getitem__") else int(grid_rows)
    gc = int(grid_cols[0]) if hasattr(grid_cols, "__getitem__") else int(grid_cols)
    n_steps = int(steps[0]) if hasattr(steps, "__getitem__") else int(steps)
    planned = _plan_for(ctx, section, gr, gc)
    if planned is not None:
        record, plan, registry = planned
        delta = _heat_steps_planned(
            ctx, record, plan, registry, section.full(), n_steps
        )
    else:
        full = _full(section)
        if isinstance(section, LocalSection) and max(section.borders) > 1:
            raise ValueError(
                "the unplanned heat_steps path supports exactly 1-deep "
                f"borders (got {section.borders}); deep borders need the "
                "planned path (a managed array on a machine with the "
                "perf layer loaded)"
            )
        delta = 0.0
        for _ in range(n_steps):
            exchange_halos(ctx, full, gr, gc)
            new_interior = jacobi_sweep(full)
            delta = float(np.max(np.abs(new_interior - full[1:-1, 1:-1])))
            full[1:-1, 1:-1] = new_interior
    delta = collectives.allreduce(ctx.comm, delta, op="max")
    if delta_out is not None:
        if isinstance(delta_out, OutCell):
            delta_out.set(delta)
        else:
            delta_out[0] = delta


def halo_traffic_for(
    ctx: SPMDContext,
    grid_rows,
    grid_cols,
    section: Union[LocalSection, np.ndarray],
    bytes_out: Union[OutCell, np.ndarray],
) -> None:
    """Measure one halo exchange's outbound bytes for this decomposition
    (the ABL-1 metric): perimeter strips x 8 bytes."""
    gr = int(grid_rows[0]) if hasattr(grid_rows, "__getitem__") else int(grid_rows)
    gc = int(grid_cols[0]) if hasattr(grid_cols, "__getitem__") else int(grid_cols)
    full = _full(section)
    r, c = grid_coords(ctx.index, gc)
    rows, cols = full.shape[0] - 2, full.shape[1] - 2
    nbytes = 0
    if r > 0:
        nbytes += cols * 8
    if r + 1 < gr:
        nbytes += cols * 8
    if c > 0:
        nbytes += rows * 8
    if c + 1 < gc:
        nbytes += rows * 8
    total = collectives.allreduce(ctx.comm, nbytes, op="sum")
    if isinstance(bytes_out, OutCell):
        bytes_out.set(total)
    else:
        bytes_out[0] = total
