"""Border-exchange stencil kernels (overlap areas, §3.2.1.3).

The thesis supports Fortran-D-style *borders* around local sections "to be
used internally by the data-parallel program ... as communication buffers"
(§3.2.1.3).  This module is the data-parallel program family that actually
uses them: 5-point Jacobi relaxation on a 2-D domain, with each sweep
exchanging edge data into the neighbours' border cells.

These kernels power the FIG-2.1 climate experiment (ocean/atmosphere
subdomains are each a bordered distributed array relaxed by these programs)
and the ABL-1 decomposition-shape ablation (halo traffic of ``(block,
block)`` vs ``(block, "*")`` grids).

Distribution contract: the array is 2-D, distributed over a ``gr x gc``
processor grid with row-major grid indexing (copy ``index`` sits at grid
coordinates ``divmod(index, gc)``), with borders of at least 1 in every
direction.  Domain edges are Dirichlet: border cells on the physical
boundary hold fixed values the kernel never overwrites.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.arrays.local_section import LocalSection
from repro.spmd import collectives
from repro.spmd.context import OutCell, SPMDContext
from repro.spmd.linalg import interior


def _full(section: Union[LocalSection, np.ndarray]) -> np.ndarray:
    if isinstance(section, LocalSection):
        if min(section.borders) < 1:
            raise ValueError(
                "stencil kernels need borders >= 1 in every direction "
                f"(got {section.borders}); create the array with "
                "Border_info=[1,1,1,1] or foreign_borders"
            )
        return section.full()
    return np.asarray(section)


def grid_coords(index: int, grid_cols: int) -> tuple[int, int]:
    """Copy index -> (row, col) on the row-major processor grid."""
    return divmod(index, grid_cols)


def border_query(parm_num: int, rank: int) -> tuple[int, ...]:
    """``foreign_borders`` protocol (§5.1.7): every array parameter of the
    stencil programs needs a 1-deep border on each side."""
    return (1,) * (2 * rank)


def exchange_halos(
    ctx: SPMDContext,
    full: np.ndarray,
    grid_rows: int,
    grid_cols: int,
) -> int:
    """Swap 1-deep edge strips with the four grid neighbours.

    Returns the number of messages sent (the ABL-1 traffic metric).
    Communication is deadlock-free because sends never block: every copy
    posts all sends, then receives selectively by tag and source.
    """
    r, c = grid_coords(ctx.index, grid_cols)
    sent = 0
    neighbours = {
        "north": (r - 1, c) if r > 0 else None,
        "south": (r + 1, c) if r + 1 < grid_rows else None,
        "west": (r, c - 1) if c > 0 else None,
        "east": (r, c + 1) if c + 1 < grid_cols else None,
    }
    strips = {
        "north": full[1, 1:-1].copy(),
        "south": full[-2, 1:-1].copy(),
        "west": full[1:-1, 1].copy(),
        "east": full[1:-1, -2].copy(),
    }
    opposite = {"north": "south", "south": "north", "west": "east", "east": "west"}
    for side, coords in neighbours.items():
        if coords is None:
            continue
        dest_rank = coords[0] * grid_cols + coords[1]
        # Tag by the side the *receiver* will see it on.
        ctx.comm.send(dest_rank, strips[side], tag=("halo", opposite[side]))
        sent += 1
    for side, coords in neighbours.items():
        if coords is None:
            continue
        src_rank = coords[0] * grid_cols + coords[1]
        strip = ctx.comm.recv(source_rank=src_rank, tag=("halo", side))
        if side == "north":
            full[0, 1:-1] = strip
        elif side == "south":
            full[-1, 1:-1] = strip
        elif side == "west":
            full[1:-1, 0] = strip
        else:
            full[1:-1, -1] = strip
    return sent


def jacobi_sweep(full: np.ndarray) -> np.ndarray:
    """One 5-point Jacobi relaxation over the interior; returns the new
    interior (does not write it back)."""
    return 0.25 * (
        full[:-2, 1:-1] + full[2:, 1:-1] + full[1:-1, :-2] + full[1:-1, 2:]
    )


def heat_steps(
    ctx: SPMDContext,
    grid_rows,
    grid_cols,
    steps,
    section: Union[LocalSection, np.ndarray],
    delta_out: Optional[Union[OutCell, np.ndarray]] = None,
) -> None:
    """Run ``steps`` Jacobi sweeps of the heat equation on a bordered
    distributed array.

    Precondition: section has 1-deep borders; domain-edge border cells hold
    the Dirichlet boundary values.  Postcondition: the interior holds the
    relaxed field; ``delta_out`` (if given) the global max |change| of the
    final sweep — the convergence measure.
    """
    gr = int(grid_rows[0]) if hasattr(grid_rows, "__getitem__") else int(grid_rows)
    gc = int(grid_cols[0]) if hasattr(grid_cols, "__getitem__") else int(grid_cols)
    n_steps = int(steps[0]) if hasattr(steps, "__getitem__") else int(steps)
    full = _full(section)
    delta = 0.0
    for _ in range(n_steps):
        exchange_halos(ctx, full, gr, gc)
        new_interior = jacobi_sweep(full)
        delta = float(np.max(np.abs(new_interior - full[1:-1, 1:-1])))
        full[1:-1, 1:-1] = new_interior
    delta = collectives.allreduce(ctx.comm, delta, op="max")
    if delta_out is not None:
        if isinstance(delta_out, OutCell):
            delta_out.set(delta)
        else:
            delta_out[0] = delta


def halo_traffic_for(
    ctx: SPMDContext,
    grid_rows,
    grid_cols,
    section: Union[LocalSection, np.ndarray],
    bytes_out: Union[OutCell, np.ndarray],
) -> None:
    """Measure one halo exchange's outbound bytes for this decomposition
    (the ABL-1 metric): perimeter strips x 8 bytes."""
    gr = int(grid_rows[0]) if hasattr(grid_rows, "__getitem__") else int(grid_rows)
    gc = int(grid_cols[0]) if hasattr(grid_cols, "__getitem__") else int(grid_cols)
    full = _full(section)
    r, c = grid_coords(ctx.index, gc)
    rows, cols = full.shape[0] - 2, full.shape[1] - 2
    nbytes = 0
    if r > 0:
        nbytes += cols * 8
    if r + 1 < gr:
        nbytes += cols * 8
    if c > 0:
        nbytes += rows * 8
    if c + 1 < gc:
        nbytes += rows * 8
    total = collectives.allreduce(ctx.comm, nbytes, op="sum")
    if isinstance(bytes_out, OutCell):
        bytes_out.set(total)
    else:
        bytes_out[0] = total
