"""Group communicators: typed point-to-point messaging within one
distributed call (§3.1.4, §3.4.1).

The copies of an SPMD program communicate "just as they normally would"
(§3.3.1) — but their messages must not conflict with task-parallel traffic
or with a *different* concurrent distributed call.  Three mechanisms keep
the traffic disjoint, mirroring §3.4.1/§5.3:

* every message carries ``MessageType.DATA_PARALLEL`` (vs ``PCN``);
* every message carries the **group id** of its distributed call, so two
  concurrent calls sharing a processor cannot intercept each other;
* receives are *selective* on (type, group, tag, source).

Ranks are group-relative: rank ``r`` is physical processor ``procs[r]``.
This is the relocatability contract of §3.5 — programs use only ranks, and
the same program runs unchanged on any processor subset.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

from repro.vp.machine import Machine
from repro.vp.message import Message, MessageType


class GroupComm:
    """mpi4py-style communicator scoped to one processor group + call."""

    def __init__(
        self,
        machine: Machine,
        procs: Sequence[int],
        rank: int,
        group: Hashable,
    ) -> None:
        self.machine = machine
        self.procs = tuple(int(p) for p in procs)
        self.rank = int(rank)
        self.group = group
        if not 0 <= self.rank < len(self.procs):
            raise ValueError(
                f"rank {rank} out of range for group of {len(self.procs)}"
            )
        # Processor -> rank, precomputed: rank lookups happen once per
        # received message, so they must not scan the whole group.
        self._rank_of_proc = {p: r for r, p in enumerate(self.procs)}

    @property
    def size(self) -> int:
        return len(self.procs)

    @property
    def processor_number(self) -> int:
        """The physical (virtual-machine) processor this copy runs on."""
        return self.procs[self.rank]

    # -- point-to-point --------------------------------------------------------

    def send(self, dest_rank: int, payload: Any, tag: Hashable = None) -> None:
        """Asynchronous typed send to a group-relative rank."""
        self.machine.send(
            source=self.processor_number,
            dest=self.procs[dest_rank],
            payload=payload,
            mtype=MessageType.DATA_PARALLEL,
            tag=tag,
            group=self.group,
        )

    def recv(
        self,
        source_rank: Optional[int] = None,
        tag: Hashable = None,
        timeout: Optional[float] = None,
    ) -> Any:
        """Selective receive; ``source_rank=None`` accepts any group peer."""
        node = self.machine.processor(self.processor_number)
        source = None if source_rank is None else self.procs[source_rank]
        msg = node.mailbox.recv(
            mtype=MessageType.DATA_PARALLEL,
            tag=tag,
            source=source,
            group=self.group,
            timeout=timeout,
        )
        return msg.payload

    def recv_message(
        self,
        source_rank: Optional[int] = None,
        tag: Hashable = None,
        timeout: Optional[float] = None,
    ) -> Message:
        """Like :meth:`recv` but returns the full message envelope."""
        node = self.machine.processor(self.processor_number)
        source = None if source_rank is None else self.procs[source_rank]
        return node.mailbox.recv(
            mtype=MessageType.DATA_PARALLEL,
            tag=tag,
            source=source,
            group=self.group,
            timeout=timeout,
        )

    def sendrecv(
        self,
        dest_rank: int,
        payload: Any,
        source_rank: Optional[int] = None,
        tag: Hashable = None,
    ) -> Any:
        """Exchange: send then receive (safe because sends never block)."""
        self.send(dest_rank, payload, tag=tag)
        return self.recv(
            source_rank if source_rank is not None else dest_rank, tag=tag
        )

    def rank_of_source(self, message: Message) -> int:
        """Physical source processor -> group-relative rank."""
        try:
            return self._rank_of_proc[message.source]
        except KeyError:
            raise ValueError(
                f"{message.source} is not in tuple"
            ) from None

    def dup(self, subgroup: Sequence[int], group: Hashable) -> "GroupComm":
        """Communicator for a subgroup (ranks into this group's procs).

        The calling rank must be a member; its new rank is its position in
        ``subgroup``.
        """
        procs = tuple(self.procs[r] for r in subgroup)
        lookup = {p: r for r, p in enumerate(procs)}
        try:
            new_rank = lookup[self.processor_number]
        except KeyError:
            raise ValueError(
                f"{self.processor_number} is not in tuple"
            ) from None
        return GroupComm(self.machine, procs, new_rank, group)
