"""Distributed radix-2 FFT programs (§6.2.3).

Implements the data-parallel programs specified in §6.2.3 of the thesis:

* ``compute_roots`` — the N-th complex roots of unity;
* ``rho_proc`` — the bit-reversal map;
* ``fft_reverse`` — transform with input in *bit-reversed* order and output
  in natural order (decimation-in-time);
* ``fft_natural`` — transform with input in natural order and output in
  bit-reversed order (decimation-in-frequency).

Conventions (transcribed from §6.2 / §6.2.3):

* the **INVERSE** transform computes ``f̂_j = Σ_k f_k ω^{jk}`` with
  ``ω = e^{2πi/N}`` and *no* scaling (polynomial evaluation at the roots of
  unity);
* the **FORWARD** transform computes ``f_j = (1/N) Σ_k f̂_k ω^{-jk}``
  *including* the division by N (polynomial interpolation).

Complex values are stored as NumPy complex128, or — as in the thesis,
whose arrays are ``double`` with "each successive pair of doubles
represent[ing] a complex number" — as flat float64 arrays of even length,
reinterpreted in place by :func:`as_complex`.

Data distribution: N elements block-distributed over P processors
(both powers of two, N >= P), m = N/P contiguous slots per copy.  Stages
with butterfly span < m are fully local and vectorised; the log2(P)
remaining stages are *binary-exchange* stages, each swapping whole local
blocks with the partner ``index XOR span/m``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.arrays.local_section import LocalSection
from repro.spmd.context import SPMDContext
from repro.spmd.linalg import interior

INVERSE = 1
FORWARD = 0


# ---------------------------------------------------------------------------
# bit reversal
# ---------------------------------------------------------------------------


def rho(bits: int, value: int) -> int:
    """The bit-reversal map ρ_m (§6.2.1): reverse the low ``bits`` bits."""
    out = 0
    for _ in range(bits):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


def rho_proc(ctx: SPMDContext, np_bits, tp, returnp) -> None:
    """§6.2.3 ``rho_proc``: *returnp = reversal of the low *np bits of *tp.

    Parameters follow the thesis' by-reference convention: each is a
    length-1 array or an OutCell-like object.
    """
    bits = int(np_bits[0]) if hasattr(np_bits, "__getitem__") else int(np_bits)
    t = int(tp[0]) if hasattr(tp, "__getitem__") else int(tp)
    result = rho(bits, t)
    if hasattr(returnp, "set"):
        returnp.set(result)
    else:
        returnp[0] = result


def bit_reverse_permutation(n: int) -> np.ndarray:
    """The full permutation vector: index i -> rho(log2 n, i)."""
    bits = _log2(n)
    return np.array([rho(bits, i) for i in range(n)], dtype=np.int64)


def _log2(n: int) -> int:
    bits = n.bit_length() - 1
    if n <= 0 or (1 << bits) != n:
        raise ValueError(f"{n} is not a positive power of two")
    return bits


# ---------------------------------------------------------------------------
# complex storage
# ---------------------------------------------------------------------------


def as_complex(x: Union[LocalSection, np.ndarray]) -> np.ndarray:
    """View a local section as complex128, in place.

    Accepts native complex arrays, or the thesis' paired-doubles layout
    (flat float64, even length) which is reinterpreted without copying.
    """
    arr = interior(x)
    if np.iscomplexobj(arr):
        return arr.reshape(-1)
    if not arr.flags.c_contiguous:
        raise ValueError(
            "paired-double complex storage must be contiguous (local "
            "sections with borders cannot alias complex views)"
        )
    if arr.dtype != np.float64 or arr.size % 2 != 0:
        raise ValueError(
            "complex storage must be complex128 or float64 pairs, got "
            f"{arr.dtype} of size {arr.size}"
        )
    return arr.view(np.complex128).reshape(-1)


# ---------------------------------------------------------------------------
# roots of unity
# ---------------------------------------------------------------------------


def compute_roots(ctx: SPMDContext, n, epsilon) -> None:
    """§6.2.3 ``compute_roots``: epsilon[j] = ω^j, ω = e^{2πi/n}.

    Precondition: n is a power of two; epsilon's local storage holds n
    complex values (every copy receives the full table — the thesis
    distributes the (2n, P) roots array ``("*", "block")`` so each
    processor's column is a complete copy).
    """
    nn = int(n[0]) if hasattr(n, "__getitem__") else int(n)
    _log2(nn)
    eps = as_complex(epsilon)
    if eps.size != nn:
        raise ValueError(
            f"epsilon holds {eps.size} complex slots, need {nn}"
        )
    eps[:] = np.exp(2j * np.pi * np.arange(nn) / nn)


# ---------------------------------------------------------------------------
# serial reference kernels (single local block = whole array)
# ---------------------------------------------------------------------------


def dit_serial(x: np.ndarray, eps: np.ndarray, inverse: bool) -> None:
    """In-place DIT: bit-reversed input -> natural output."""
    n = x.size
    _log2(n)
    span = 1
    while span < n:
        exps = (np.arange(span) * (n // (2 * span))) % n
        w = eps[exps] if inverse else np.conj(eps[exps])
        y = x.reshape(-1, 2 * span)
        u = y[:, :span].copy()
        t = w * y[:, span:]
        y[:, :span] = u + t
        y[:, span:] = u - t
        span *= 2
    if not inverse:
        x /= n


def dif_serial(x: np.ndarray, eps: np.ndarray, inverse: bool) -> None:
    """In-place DIF: natural input -> bit-reversed output."""
    n = x.size
    _log2(n)
    span = n // 2
    while span >= 1:
        exps = (np.arange(span) * (n // (2 * span))) % n
        w = eps[exps] if inverse else np.conj(eps[exps])
        y = x.reshape(-1, 2 * span)
        u = y[:, :span].copy()
        v = y[:, span:]
        y[:, :span] = u + v
        y[:, span:] = (u - v) * w
        span //= 2
    if not inverse:
        x /= n


# ---------------------------------------------------------------------------
# distributed stages
# ---------------------------------------------------------------------------


def _exchange_stage_dit(
    ctx: SPMDContext,
    x: np.ndarray,
    eps: np.ndarray,
    n: int,
    span: int,
    inverse: bool,
) -> None:
    """One binary-exchange DIT stage with butterfly span >= m."""
    m = x.size
    partner = ctx.index ^ (span // m)
    am_low = (ctx.index & (span // m)) == 0
    other = ctx.comm.sendrecv(partner, x.copy(), tag=("fft", span))
    base_low = (ctx.index if am_low else partner) * m
    j = (base_low + np.arange(m)) % span
    exps = (j * (n // (2 * span))) % n
    w = eps[exps] if inverse else np.conj(eps[exps])
    if am_low:
        x += w * other  # u + t
    else:
        x[:] = other - w * x  # u - t


def _exchange_stage_dif(
    ctx: SPMDContext,
    x: np.ndarray,
    eps: np.ndarray,
    n: int,
    span: int,
    inverse: bool,
) -> None:
    """One binary-exchange DIF stage with butterfly span >= m."""
    m = x.size
    partner = ctx.index ^ (span // m)
    am_low = (ctx.index & (span // m)) == 0
    other = ctx.comm.sendrecv(partner, x.copy(), tag=("fft", span))
    base_low = (ctx.index if am_low else partner) * m
    j = (base_low + np.arange(m)) % span
    exps = (j * (n // (2 * span))) % n
    w = eps[exps] if inverse else np.conj(eps[exps])
    if am_low:
        x += other  # u + v
    else:
        x[:] = (other - x) * w  # (u - v) * w


def _local_stages_dit(
    x: np.ndarray, eps: np.ndarray, n: int, max_span: int, inverse: bool
) -> None:
    """All DIT stages with span < max_span, fully local and vectorised."""
    span = 1
    while span < max_span:
        exps = (np.arange(span) * (n // (2 * span))) % n
        w = eps[exps] if inverse else np.conj(eps[exps])
        y = x.reshape(-1, 2 * span)
        u = y[:, :span].copy()
        t = w * y[:, span:]
        y[:, :span] = u + t
        y[:, span:] = u - t
        span *= 2


def _local_stages_dif(
    x: np.ndarray,
    eps: np.ndarray,
    n: int,
    base: int,
    start_span: int,
    inverse: bool,
) -> None:
    """All DIF stages with span <= start_span (local).  ``base`` is the
    copy's global offset, needed because j = i % span is span-periodic and
    base is a multiple of every local span."""
    span = start_span
    while span >= 1:
        exps = (np.arange(span) * (n // (2 * span))) % n
        w = eps[exps] if inverse else np.conj(eps[exps])
        y = x.reshape(-1, 2 * span)
        u = y[:, :span].copy()
        v = y[:, span:]
        y[:, :span] = u + v
        y[:, span:] = (u - v) * w
        span //= 2


# ---------------------------------------------------------------------------
# the §6.2.3 programs
# ---------------------------------------------------------------------------


def _unbox(v) -> int:
    return int(v[0]) if hasattr(v, "__getitem__") else int(v)


def fft_reverse(ctx: SPMDContext, procs, p, index, n, flag, epsilon, bb) -> None:
    """§6.2.3 ``fft_reverse``: input bit-reversed, output natural order.

    Precondition: P = len(procs) is a power of 2; N is a power of 2 with
    N >= P; epsilon holds the N N-th roots of unity; bb is this copy's
    local section of the array to transform, global indexing bit-reversed.
    Postcondition: bb holds the local section of the transform, natural
    order; FORWARD includes division by N.
    """
    nn = _unbox(n)
    inverse = _unbox(flag) == INVERSE
    eps = as_complex(epsilon)
    x = as_complex(bb)
    m = x.size
    _log2(m)
    # DIT runs spans 1..N/2 ascending: local first, then exchanges.
    _local_stages_dit(x, eps, nn, min(m, nn), inverse)
    span = m
    while span < nn:
        _exchange_stage_dit(ctx, x, eps, nn, span, inverse)
        span *= 2
    if not inverse:
        x /= nn


def fft_natural(ctx: SPMDContext, procs, p, index, n, flag, epsilon, bb) -> None:
    """§6.2.3 ``fft_natural``: input natural order, output bit-reversed.

    Pre/postconditions mirror :func:`fft_reverse` with the orders swapped.
    """
    nn = _unbox(n)
    inverse = _unbox(flag) == INVERSE
    eps = as_complex(epsilon)
    x = as_complex(bb)
    m = x.size
    _log2(m)
    # DIF runs spans N/2..1 descending: exchanges first, then local.
    span = nn // 2
    while span >= m:
        _exchange_stage_dif(ctx, x, eps, nn, span, inverse)
        span //= 2
    base = ctx.index * m
    _local_stages_dif(x, eps, nn, base, span, inverse)
    if not inverse:
        x /= nn


# ---------------------------------------------------------------------------
# 2-D FFT via distributed transpose (extension)
# ---------------------------------------------------------------------------


def distributed_transpose(ctx: SPMDContext, local: np.ndarray) -> np.ndarray:
    """Transpose an N x N matrix distributed as row blocks.

    Precondition: ``local`` is this copy's (m, N) row block, m = N/P.
    Postcondition: returns the (m, N) row block of the *transposed*
    matrix.  Implemented as a tiled alltoall: copy i sends its (m, m)
    tile destined for copy j, receives the mirror tile, and transposes
    each tile locally — the classic distributed-transpose exchange.
    """
    from repro.spmd import collectives

    m, n = local.shape
    p = ctx.num_procs
    if m * p != n:
        raise ValueError(
            f"transpose needs square N x N with N = m*P (got local {m}x{n} "
            f"over P={p})"
        )
    tiles = [np.ascontiguousarray(local[:, j * m : (j + 1) * m])
             for j in range(p)]
    received = collectives.alltoall(ctx.comm, tiles)
    out = np.empty_like(local)
    for j in range(p):
        out[:, j * m : (j + 1) * m] = received[j].T
    return out


def fft2(ctx: SPMDContext, n, flag, bb) -> None:
    """2-D FFT of an N x N complex array distributed by row blocks.

    Precondition: N a power of two, N % P == 0; ``bb`` holds this copy's
    row block (m rows of N complex values each, natural order both axes).
    Postcondition: bb holds the 2-D transform (rows and columns both in
    natural order).  INVERSE applies the thesis' unscaled evaluation
    transform along both axes; FORWARD includes the full 1/N^2 scaling.

    Row-column algorithm: transform the local rows serially (they are
    complete), distributed-transpose, transform again, transpose back.
    """
    nn = _unbox(n)
    inverse = _unbox(flag) == INVERSE
    x = as_complex(bb)
    m = x.size // nn
    rows = x.reshape(m, nn)
    eps = np.exp(2j * np.pi * np.arange(nn) / nn)
    perm = bit_reverse_permutation(nn)
    inv_perm = np.argsort(perm)

    def transform_rows(block: np.ndarray) -> None:
        for r in range(block.shape[0]):
            row = block[r].copy()
            dif_serial(row, eps, inverse)  # natural in -> bit-reversed out
            block[r] = row[inv_perm]  # back to natural order

    transform_rows(rows)
    rows[:] = distributed_transpose(ctx, rows)
    transform_rows(rows)
    rows[:] = distributed_transpose(ctx, rows)
