"""The Appendix D case study: adapting an existing data-parallel library.

The thesis' prototype was validated by adapting van de Velde's SPMD
linear-algebra library, originally written against the **Cosmic
Environment** (CE): untyped point-to-point messages, absolute node
numbers, and arrays-of-arrays matrix representations.  §D.2 records the
modifications required:

* **relocatability** — "explicit use of processor numbers was confined to
  the library's communication routines.  These routines were modified,
  replacing references to explicit processor numbers with references to an
  array of processor numbers passed as a parameter";
* **parameter compatibility** — "the programs ... represented a
  distributed array as a C data structure containing array dimensions and
  a pointer to the local section, and the local section of a
  multidimensional array was an array of arrays.  The programs were
  modified to instead represent distributed arrays as flat local
  sections";
* **communication compatibility** — "the example library's communication
  routines were ... modified to use typed messages of a
  data-parallel-program type" (§5.3).

This module reproduces the whole story in miniature:

* :class:`CosmicEnvironment` — the legacy communication substrate
  (untyped messages, absolute machine node numbers);
* :func:`legacy_inner_product`, :func:`legacy_broadcast`,
  :class:`LegacyMatrix` — a small "existing library" written against it,
  exhibiting each §D incompatibility;
* :class:`AdaptedEnvironment` — the same ``xsend``/``xrecv`` surface
  re-implemented over a group communicator (typed messages,
  group-relative ranks), so the legacy routines run unmodified once handed
  the adapted environment — the thesis' "at most minor modifications"
  claim, made executable;
* :func:`flatten_legacy_matrix` / :func:`unflatten_to_legacy` — the
  arrays-of-arrays ⇄ flat-section conversion.

The tests in ``tests/spmd/test_legacy.py`` demonstrate each failure mode
of the unadapted library (wrong-node delivery off processor 0, cross-layer
interception) and that the adapted environment fixes it without touching
the library routines themselves.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.spmd.context import SPMDContext
from repro.vp.machine import Machine
from repro.vp.message import MessageType


class CosmicEnvironment:
    """The legacy substrate: untyped sends to *absolute* node numbers.

    Faithful to the pre-adaptation world in both defects §D identifies:
    ``xsend`` addresses machine nodes directly (node k of an application
    written for nodes 0..P-1 — running it on any other processor subset
    misdelivers), and ``xrecv`` takes the oldest message of *any* kind
    (the §3.4.1 interception hazard).
    """

    def __init__(
        self, machine: Machine, my_node: int, recv_timeout: float = 5.0
    ) -> None:
        self.machine = machine
        self.my_node = my_node
        self.recv_timeout = recv_timeout

    def xsend(self, node: int, data: Any) -> None:
        self.machine.send(
            source=self.my_node,
            dest=node,
            payload=data,
            mtype=MessageType.UNTYPED,
        )

    def xrecv(self, timeout: Optional[float] = None) -> Any:
        msg = self.machine.processor(self.my_node).mailbox.recv_untyped(
            timeout=timeout if timeout is not None else self.recv_timeout
        )
        return msg.payload


class AdaptedEnvironment:
    """The §D adaptation: same API surface, safe implementation.

    ``node`` arguments are reinterpreted as indices into the call's
    processors array (the relocatability fix), and traffic flows as typed,
    group-scoped messages with selective receive (the conflict fix).  A
    legacy routine runs unmodified: only the environment object changes.
    """

    def __init__(self, ctx: SPMDContext, recv_timeout: float = 5.0) -> None:
        self._ctx = ctx
        self.my_node = ctx.index  # group-relative, not absolute
        self.recv_timeout = recv_timeout

    def xsend(self, node: int, data: Any) -> None:
        self._ctx.comm.send(node, data, tag="legacy")

    def xrecv(self, timeout: Optional[float] = None) -> Any:
        return self._ctx.comm.recv(
            tag="legacy",
            timeout=timeout if timeout is not None else self.recv_timeout,
        )


# ---------------------------------------------------------------------------
# the "existing library" (written once, against the legacy API surface)
# ---------------------------------------------------------------------------


def legacy_broadcast(env, num_nodes: int, value: Any) -> Any:
    """Node-0-rooted broadcast, exactly as a CE-era library would write
    it: the root loops over absolute nodes 1..P-1."""
    if env.my_node == 0:
        for node in range(1, num_nodes):
            env.xsend(node, value)
        return value
    return env.xrecv()


def legacy_inner_product(
    env, num_nodes: int, local_x: np.ndarray, local_y: np.ndarray
) -> float:
    """Gather-at-0 then broadcast inner product (the CE-era pattern)."""
    partial = float(np.dot(local_x, local_y))
    if env.my_node == 0:
        total = partial
        for _ in range(num_nodes - 1):
            total += env.xrecv()
        for node in range(1, num_nodes):
            env.xsend(node, total)
        return total
    env.xsend(0, partial)
    return env.xrecv()


class LegacyMatrix:
    """The §D arrays-of-arrays matrix: a list of row lists plus header
    fields — the representation the thesis had to convert away from."""

    def __init__(self, rows: int, cols: int) -> None:
        self.rows = rows
        self.cols = cols
        self.data = [[0.0] * cols for _ in range(rows)]

    @classmethod
    def from_values(cls, values: np.ndarray) -> "LegacyMatrix":
        m = cls(values.shape[0], values.shape[1])
        m.data = [list(map(float, row)) for row in values]
        return m

    def row(self, r: int) -> list:
        return self.data[r]


def legacy_matvec(matrix: LegacyMatrix, vector: list) -> list:
    """Row-by-row matvec over the nested representation."""
    return [
        sum(matrix.data[r][c] * vector[c] for c in range(matrix.cols))
        for r in range(matrix.rows)
    ]


# ---------------------------------------------------------------------------
# the parameter adaptation (§D "Compatibility of parameters")
# ---------------------------------------------------------------------------


def flatten_legacy_matrix(matrix: LegacyMatrix) -> np.ndarray:
    """Arrays-of-arrays -> the flat contiguous local section the
    prototype's model requires ("a local section is simply a contiguous
    block of storage", §3.5)."""
    return np.asarray(matrix.data, dtype=np.float64).reshape(-1)


def unflatten_to_legacy(
    flat: np.ndarray, rows: int, cols: int
) -> LegacyMatrix:
    """Flat section -> the nested representation, for reuse of unmodified
    row-oriented legacy routines."""
    return LegacyMatrix.from_values(
        np.asarray(flat, dtype=np.float64).reshape(rows, cols)
    )
