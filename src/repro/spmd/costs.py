"""Analytic communication-cost model for the SPMD substrate.

The thesis evaluates its prototype qualitatively; this module gives the
reproduction a quantitative footing that is independent of the GIL: for
every collective algorithm, the stencil halo exchange, and the distributed
FFT, closed-form **message counts** and **critical-path rounds** (the two
terms of a LogP-style latency model).  Tests validate each formula against
the machine's exact routed-message counters, so the model is load-bearing,
not decorative; the ABL benchmarks use it to explain their measurements.

Conventions: ``p`` ranks in the group, messages counted machine-wide (one
per point-to-point send), rounds = length of the longest chain of
dependent messages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _ceil_log2(p: int) -> int:
    if p < 1:
        raise ValueError("group size must be >= 1")
    return math.ceil(math.log2(p)) if p > 1 else 0


@dataclass(frozen=True)
class Cost:
    """Messages moved and dependent rounds for one operation."""

    messages: int
    rounds: int

    def latency(self, alpha: float, per_message_payload: float = 0.0,
                beta: float = 0.0) -> float:
        """LogP-ish estimate: rounds * (alpha + beta*payload)."""
        return self.rounds * (alpha + beta * per_message_payload)


# -- collectives -------------------------------------------------------------


def barrier_cost(p: int, algorithm: str = "tree") -> Cost:
    """linear: gather-at-0 then release (2(p-1) msgs, 2 rounds);
    tree: dissemination, p msgs per round for ceil(log2 p) rounds."""
    if p == 1:
        return Cost(0, 0)
    if algorithm == "linear":
        return Cost(2 * (p - 1), 2)
    rounds = _ceil_log2(p)
    return Cost(p * rounds, rounds)


def bcast_cost(p: int, algorithm: str = "tree") -> Cost:
    """Both algorithms move p-1 messages; the binomial tree does it in
    ceil(log2 p) dependent rounds instead of p-1."""
    if p == 1:
        return Cost(0, 0)
    if algorithm == "linear":
        return Cost(p - 1, p - 1)
    return Cost(p - 1, _ceil_log2(p))


def reduce_cost(p: int, algorithm: str = "tree") -> Cost:
    """Mirror of bcast: p-1 messages, linear-chain vs log-depth."""
    if p == 1:
        return Cost(0, 0)
    if algorithm == "linear":
        return Cost(p - 1, p - 1)
    return Cost(p - 1, _ceil_log2(p))


def allreduce_cost(p: int, algorithm: str = "tree") -> Cost:
    """reduce + bcast (the implementation composes them)."""
    r, b = reduce_cost(p, algorithm), bcast_cost(p, algorithm)
    return Cost(r.messages + b.messages, r.rounds + b.rounds)


def gather_cost(p: int) -> Cost:
    if p == 1:
        return Cost(0, 0)
    return Cost(p - 1, 1)


def scatter_cost(p: int) -> Cost:
    if p == 1:
        return Cost(0, 0)
    return Cost(p - 1, 1)


def allgather_cost(p: int, algorithm: str = "tree") -> Cost:
    """linear: gather at 0 (p-1) + linear bcast of the list (p-1);
    tree: ring, p messages per round for p-1 rounds... the ring moves
    p*(p-1)/... exactly (p-1) sends per rank = p(p-1) total? no: each
    rank sends one message per round for p-1 rounds -> p(p-1) messages
    but each carries one item; rounds = p-1."""
    if p == 1:
        return Cost(0, 0)
    if algorithm == "linear":
        return Cost(2 * (p - 1), p)  # gather (1 round) + linear bcast
    return Cost(p * (p - 1), p - 1)


def alltoall_cost(p: int) -> Cost:
    """Direct exchange: every rank sends to every other rank."""
    if p == 1:
        return Cost(0, 0)
    return Cost(p * (p - 1), 1)


def scan_cost(p: int) -> Cost:
    """Linear chain."""
    if p == 1:
        return Cost(0, 0)
    return Cost(p - 1, p - 1)


# -- application kernels --------------------------------------------------------


def halo_exchange_cost(grid_rows: int, grid_cols: int) -> Cost:
    """One 1-deep halo exchange on a gr x gc grid: every internal edge
    carries one message in each direction; all exchanges proceed
    concurrently (1 round)."""
    internal_edges = (grid_rows - 1) * grid_cols + (grid_cols - 1) * grid_rows
    return Cost(2 * internal_edges, 1 if internal_edges else 0)


def halo_exchange_bytes(n_rows: int, n_cols: int, grid_rows: int,
                        grid_cols: int, itemsize: int = 8) -> int:
    """Total bytes moved by one halo exchange of an (n_rows x n_cols)
    array on a (grid_rows x grid_cols) grid — the ABL-1 model."""
    rows, cols = n_rows // grid_rows, n_cols // grid_cols
    horizontal_cells = (grid_rows - 1) * grid_cols * cols
    vertical_cells = (grid_cols - 1) * grid_rows * rows
    return (horizontal_cells + vertical_cells) * 2 * itemsize


def fft_exchange_cost(n: int, p: int) -> Cost:
    """Binary-exchange 1-D FFT of N points on P copies: log2(P) exchange
    stages, each a pairwise block swap (2 messages per pair, P messages
    per stage)."""
    stages = _ceil_log2(p)
    return Cost(p * stages, stages)


def transpose_cost(p: int) -> Cost:
    """Distributed transpose = one alltoall."""
    return alltoall_cost(p)


def fft2_cost(n: int, p: int) -> Cost:
    """Row-column 2-D FFT: local row transforms + two transposes."""
    t = transpose_cost(p)
    return Cost(2 * t.messages, 2 * t.rounds)
