"""Binary associative reduction operators for collectives and distributed
calls (§3.3.1.2: "merged using any binary associative operator — by default
max").
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

BinaryOp = Callable[[Any, Any], Any]


def op_max(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.maximum(a, b)
    return max(a, b)


def op_min(a: Any, b: Any) -> Any:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.minimum(a, b)
    return min(a, b)


def op_sum(a: Any, b: Any) -> Any:
    return a + b


def op_prod(a: Any, b: Any) -> Any:
    return a * b


def op_concat(a: Any, b: Any) -> Any:
    """List/array concatenation (an associative, non-commutative operator)."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        return np.concatenate([a, b])
    return list(a) + list(b)


NAMED_OPS: dict[str, BinaryOp] = {
    "max": op_max,
    "min": op_min,
    "sum": op_sum,
    "prod": op_prod,
    "concat": op_concat,
}


def resolve_op(op) -> BinaryOp:
    """Accept an operator by name or as a callable."""
    if callable(op):
        return op
    try:
        return NAMED_OPS[op]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown reduction operator {op!r}; expected a callable or one "
            f"of {sorted(NAMED_OPS)}"
        ) from None
