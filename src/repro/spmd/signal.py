"""Signal-processing operations on the FFT pipeline (§2.3.2).

The thesis motivates the pipelined problem class with "signal-processing
operations like convolution, correlation, and filtering" performed as
iterated Fourier-transform computations (inverse DFT -> elementwise
manipulation -> forward DFT).  §6.2 works the polynomial-multiplication
instance in full; this module supplies the other three elementwise
manipulations over the same distributed-FFT substrate, each as a
data-parallel program suitable for the middle stage of the Fig 2.2
pipeline.

All programs operate on value tables in the frequency domain, stored as
paired-doubles complex local sections (§6.2's representation).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.arrays.local_section import LocalSection
from repro.spmd.context import SPMDContext
from repro.spmd.fft import as_complex

ArrayLike = Union[LocalSection, np.ndarray]


def combine_convolve(ctx: SPMDContext, local_a: ArrayLike,
                     local_b: ArrayLike) -> None:
    """Frequency-domain convolution: B <- A .* B.

    By the convolution theorem, multiplying the two signals' value tables
    (their inverse DFTs in the thesis' convention) yields the value table
    of their circular convolution — §6.2's combine stage generalised.
    """
    a = as_complex(local_a)
    b = as_complex(local_b)
    b *= a


def combine_correlate(ctx: SPMDContext, local_a: ArrayLike,
                      local_b: ArrayLike) -> None:
    """Frequency-domain cross-correlation: B <- conj(A) .* B.

    The correlation theorem: conjugating one spectrum turns convolution
    into correlation.
    """
    a = as_complex(local_a)
    b = as_complex(local_b)
    b *= np.conj(a)


def combine_filter(ctx: SPMDContext, n, cutoff_fraction,
                   local_b: ArrayLike) -> None:
    """Ideal low-pass filter: zero every bin above the cutoff.

    Precondition: B holds this copy's block of an N-point value table in
    natural frequency order; ``cutoff_fraction`` in (0, 1] keeps bins with
    |frequency| <= cutoff_fraction * N/2 (two-sided, conjugate-symmetric,
    so real signals stay real after the inverse transform).
    """
    nn = int(n[0]) if hasattr(n, "__getitem__") else int(n)
    frac = float(
        cutoff_fraction[0]
        if hasattr(cutoff_fraction, "__getitem__")
        else cutoff_fraction
    )
    b = as_complex(local_b)
    m = b.size
    base = ctx.index * m
    bins = base + np.arange(m)
    # two-sided frequency index: 0..N/2 then mirrored
    freq = np.minimum(bins, nn - bins)
    keep = freq <= frac * (nn / 2)
    b[~keep] = 0.0


def combine_scale(ctx: SPMDContext, factor, local_b: ArrayLike) -> None:
    """Uniform gain: B <- factor * B (the trivial elementwise stage)."""
    f = float(factor[0] if hasattr(factor, "__getitem__") else factor)
    as_complex(local_b)[:] *= f


# ---------------------------------------------------------------------------
# serial references (for tests and the benchmark baselines)
# ---------------------------------------------------------------------------


def circular_convolve_reference(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Direct O(N^2) circular convolution."""
    n = len(x)
    out = np.zeros(n, dtype=np.result_type(x, y, np.float64))
    for k in range(n):
        out[k] = sum(x[j] * y[(k - j) % n] for j in range(n))
    return out


def circular_correlate_reference(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Direct O(N^2) circular cross-correlation (x lagged against y)."""
    n = len(x)
    out = np.zeros(n, dtype=np.result_type(x, y, np.float64))
    for k in range(n):
        out[k] = sum(x[j] * y[(j + k) % n] for j in range(n))
    return out


def lowpass_reference(x: np.ndarray, cutoff_fraction: float) -> np.ndarray:
    """Ideal low-pass via numpy.fft, matching :func:`combine_filter`."""
    n = len(x)
    spectrum = np.fft.ifft(x) * n  # thesis' inverse convention
    bins = np.arange(n)
    freq = np.minimum(bins, n - bins)
    spectrum[freq > cutoff_fraction * (n / 2)] = 0.0
    return np.real(np.fft.fft(spectrum) / n)
