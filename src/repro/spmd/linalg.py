"""SPMD linear-algebra library (the adapted van de Velde library, §D).

The thesis tested its prototype against a hand-written SPMD message-passing
C library of linear-algebra operations: distributed vectors and matrices,
basic vector/matrix operations, and "more complex operations including LU
decomposition ... and solution of an LU-decomposed system" (§D.1).  This
module is that library, rebuilt against :class:`~repro.spmd.context
.SPMDContext` and satisfying every §3.5 requirement:

* **SPMD**: each program is written to run once per processor on its local
  section;
* **relocatable**: processor identity comes only from the context/ranks;
* **flat parameters**: local sections are flat contiguous storage, obtained
  from :class:`~repro.arrays.local_section.LocalSection` views;
* **typed communication**: all traffic flows through the group
  communicator (DATA_PARALLEL-typed, group-scoped messages).

Distribution conventions (documented per program, paper-style):

* vectors are 1-D arrays distributed ``[block]``;
* matrices are 2-D arrays distributed ``(block, "*")`` — contiguous row
  blocks, every processor holding ``n/P`` full rows.

Every program takes the context first, then its parameters in the calling
convention of §4.3.1 examples (constants, index, locals, outputs).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.arrays.local_section import LocalSection
from repro.spmd import collectives
from repro.spmd.context import OutCell, SPMDContext

ArrayLike = Union[LocalSection, np.ndarray]


def interior(section: ArrayLike) -> np.ndarray:
    """Border-free ndarray view of a local section (or a raw ndarray)."""
    if isinstance(section, LocalSection):
        return section.interior()
    return np.asarray(section)


# ---------------------------------------------------------------------------
# vector creation / filling
# ---------------------------------------------------------------------------


def vec_fill(ctx: SPMDContext, value: float, v: ArrayLike) -> None:
    """Postcondition: V[i] == value for all global i."""
    interior(v)[:] = value


def vec_affine(ctx: SPMDContext, a: float, b: float, v: ArrayLike) -> None:
    """Postcondition: V[i] == a*i + b for all global i.

    ``vec_affine(ctx, 1, 1, v)`` reproduces the §6.1 initialisation
    ``V[i] = i + 1``.
    """
    local = interior(v)
    base = ctx.index * local.shape[0]
    local[:] = a * (base + np.arange(local.shape[0])) + b


def vec_copy(ctx: SPMDContext, x: ArrayLike, y: ArrayLike) -> None:
    """Postcondition: Y == X."""
    interior(y)[:] = interior(x)


# ---------------------------------------------------------------------------
# BLAS-1 style operations
# ---------------------------------------------------------------------------


def vec_scale(ctx: SPMDContext, alpha: float, x: ArrayLike) -> None:
    """Postcondition: X == alpha * X_in."""
    interior(x)[:] *= alpha


def vec_axpy(ctx: SPMDContext, alpha: float, x: ArrayLike, y: ArrayLike) -> None:
    """Postcondition: Y == alpha*X + Y_in."""
    interior(y)[:] += alpha * interior(x)


def vec_pointwise_mul(ctx: SPMDContext, x: ArrayLike, y: ArrayLike) -> None:
    """Postcondition: Y == X .* Y_in (elementwise)."""
    interior(y)[:] *= interior(x)


def vec_dot(
    ctx: SPMDContext, x: ArrayLike, y: ArrayLike, out: Union[OutCell, np.ndarray]
) -> None:
    """Postcondition: out == inner product of X and Y (on every copy)."""
    local = float(interior(x) @ interior(y))
    total = collectives.allreduce(ctx.comm, local, op="sum")
    if isinstance(out, OutCell):
        out.set(total)
    else:
        out[0] = total


def vec_norm2(ctx: SPMDContext, x: ArrayLike, out: Union[OutCell, np.ndarray]) -> None:
    """Postcondition: out == ||X||_2."""
    local = float(interior(x) @ interior(x))
    total = collectives.allreduce(ctx.comm, local, op="sum")
    value = float(np.sqrt(total))
    if isinstance(out, OutCell):
        out.set(value)
    else:
        out[0] = value


def vec_sum(ctx: SPMDContext, x: ArrayLike, out: Union[OutCell, np.ndarray]) -> None:
    """Postcondition: out == sum of all elements of X."""
    total = collectives.allreduce(ctx.comm, float(interior(x).sum()), op="sum")
    if isinstance(out, OutCell):
        out.set(total)
    else:
        out[0] = total


def vec_allgather(ctx: SPMDContext, x: ArrayLike) -> np.ndarray:
    """Assemble the full global vector on every copy (internal helper)."""
    parts = collectives.allgather(ctx.comm, interior(x).copy())
    return np.concatenate(parts)


# ---------------------------------------------------------------------------
# matrix operations (row-block distribution: (block, "*"))
# ---------------------------------------------------------------------------


def mat_fill_random(
    ctx: SPMDContext, seed: int, scale: float, a: ArrayLike
) -> None:
    """Fill a row-block-distributed matrix with reproducible random values.

    Precondition: the same ``seed`` on every copy.  Each copy derives a
    per-rank stream so the global matrix is deterministic regardless of P.
    """
    local = interior(a)
    rng = np.random.default_rng(seed + 7919 * ctx.index)
    local[:] = scale * rng.standard_normal(local.shape)


def mat_diagonally_dominant(
    ctx: SPMDContext, seed: int, n: int, a: ArrayLike
) -> None:
    """Random matrix with dominant diagonal (safe for LU without pivoting
    and for Jacobi iteration).

    Precondition: A is n x n, distributed (block, "*"); n % P == 0.
    """
    local = interior(a)
    rng = np.random.default_rng(seed + 7919 * ctx.index)
    local[:] = rng.uniform(-1.0, 1.0, local.shape)
    rows = local.shape[0]
    base = ctx.index * rows
    for r in range(rows):
        local[r, base + r] = n + rng.uniform(1.0, 2.0)


def mat_vec(
    ctx: SPMDContext, a: ArrayLike, x: ArrayLike, y: ArrayLike
) -> None:
    """y = A @ x.

    Precondition: A is n x n row-block distributed; X, Y are conformally
    block-distributed vectors.  Uses the allgather matvec of the mpi4py
    idiom: assemble x globally, multiply the local row block.
    """
    xg = vec_allgather(ctx, x)
    interior(y)[:] = interior(a) @ xg


def mat_transpose_vec(
    ctx: SPMDContext, a: ArrayLike, x: ArrayLike, y: ArrayLike
) -> None:
    """y = A.T @ x for a row-block-distributed A.

    Each copy forms its partial product from its rows, then the partials
    are summed across copies and scattered back block-wise.
    """
    local_a = interior(a)
    local_x = interior(x)
    partial = local_a.T @ local_x  # full-length partial result
    total = collectives.allreduce(ctx.comm, partial, op="sum")
    rows = interior(y).shape[0]
    base = ctx.index * rows
    interior(y)[:] = total[base : base + rows]


# ---------------------------------------------------------------------------
# LU decomposition and solution (the §D "more complex operations")
# ---------------------------------------------------------------------------


def _owner_of_row(k: int, rows_per_proc: int) -> int:
    return k // rows_per_proc


def lu_decompose(ctx: SPMDContext, n: int, a: ArrayLike) -> None:
    """In-place LU decomposition without pivoting.

    Precondition: A is n x n, row-block distributed, and such that no zero
    pivot arises (e.g. diagonally dominant).  Postcondition: A holds L
    (unit lower, below the diagonal) and U (upper, on/above).

    The classic SPMD pipeline: the owner of pivot row k broadcasts the
    U-part of that row; every copy eliminates its rows below k.
    """
    local = interior(a)
    rows = local.shape[0]
    base = ctx.index * rows
    for k in range(n - 1):
        owner = _owner_of_row(k, rows)
        if ctx.index == owner:
            pivot_row = local[k - base, k:].copy()
        else:
            pivot_row = None
        pivot_row = collectives.bcast(ctx.comm, pivot_row, root=owner)
        pivot = pivot_row[0]
        # Rows strictly below k that this copy owns:
        lo = max(k + 1, base) - base
        if lo < rows:
            multipliers = local[lo:, k] / pivot
            local[lo:, k] = multipliers
            local[lo:, k + 1 :] -= np.outer(multipliers, pivot_row[1:])


def lu_solve(
    ctx: SPMDContext, n: int, a: ArrayLike, b: ArrayLike, x: ArrayLike
) -> None:
    """Solve A x = b given the in-place LU factors from :func:`lu_decompose`.

    Precondition: A holds LU factors (row-block); B, X conformally
    distributed vectors.  Postcondition: X solves the original system; B is
    unchanged.

    Substitution is inherently sequential in k; each step's solved
    component is broadcast from its owning copy (the fan-out pipeline of
    the van de Velde formulation).
    """
    local_a = interior(a)
    rows = local_a.shape[0]
    base = ctx.index * rows

    # Forward substitution: y = L^{-1} b (unit diagonal).
    y_local = interior(b).astype(np.float64).copy()
    for k in range(n):
        owner = _owner_of_row(k, rows)
        yk = collectives.bcast(
            ctx.comm,
            float(y_local[k - base]) if ctx.index == owner else None,
            root=owner,
        )
        lo = max(k + 1, base) - base
        if lo < rows:
            y_local[lo:] -= local_a[lo:, k] * yk

    # Back substitution: x = U^{-1} y.
    x_local = interior(x)
    x_local[:] = y_local
    for k in range(n - 1, -1, -1):
        owner = _owner_of_row(k, rows)
        if ctx.index == owner:
            x_local[k - base] /= local_a[k - base, k]
            xk = float(x_local[k - base])
        else:
            xk = None
        xk = collectives.bcast(ctx.comm, xk, root=owner)
        hi = min(k, base + rows) - base
        if hi > 0:
            x_local[:hi] -= local_a[:hi, k] * xk


# ---------------------------------------------------------------------------
# iterative methods
# ---------------------------------------------------------------------------


def jacobi_iterate(
    ctx: SPMDContext,
    n: int,
    iterations: int,
    a: ArrayLike,
    b: ArrayLike,
    x: ArrayLike,
    residual_out: Optional[Union[OutCell, np.ndarray]] = None,
) -> None:
    """Run ``iterations`` Jacobi sweeps for A x = b.

    Precondition: A diagonally dominant, row-block distributed; B, X
    conformal vectors.  Postcondition: X holds the iterate;
    ``residual_out`` (if given) the final ||Ax - b||_2.
    """
    local_a = interior(a)
    local_b = interior(b)
    local_x = interior(x)
    rows = local_a.shape[0]
    base = ctx.index * rows
    diag = local_a[np.arange(rows), base + np.arange(rows)].copy()
    off = local_a.copy()
    off[np.arange(rows), base + np.arange(rows)] = 0.0

    for _ in range(iterations):
        xg = vec_allgather(ctx, local_x)
        local_x[:] = (local_b - off @ xg) / diag

    if residual_out is not None:
        xg = vec_allgather(ctx, local_x)
        r_local = float(np.sum((local_a @ xg - local_b) ** 2))
        norm = float(np.sqrt(collectives.allreduce(ctx.comm, r_local, op="sum")))
        if isinstance(residual_out, OutCell):
            residual_out.set(norm)
        else:
            residual_out[0] = norm


def power_method(
    ctx: SPMDContext,
    n: int,
    iterations: int,
    a: ArrayLike,
    x: ArrayLike,
    eigenvalue_out: Union[OutCell, np.ndarray],
) -> None:
    """Dominant-eigenvalue estimate by power iteration.

    Precondition: X holds a nonzero start vector.  Postcondition: X is the
    (normalised) iterate, ``eigenvalue_out`` the Rayleigh-quotient
    estimate.
    """
    local_x = interior(x)
    lam = 0.0
    for _ in range(iterations):
        xg = vec_allgather(ctx, local_x)
        y = interior(a) @ xg
        nrm_local = float(y @ y)
        nrm = float(
            np.sqrt(collectives.allreduce(ctx.comm, nrm_local, op="sum"))
        )
        local_x[:] = y / nrm
        xg = vec_allgather(ctx, local_x)
        ay = interior(a) @ xg
        num = collectives.allreduce(ctx.comm, float(local_x @ ay), op="sum")
        den = collectives.allreduce(ctx.comm, float(local_x @ local_x), op="sum")
        lam = num / den
    if isinstance(eigenvalue_out, OutCell):
        eigenvalue_out.set(lam)
    else:
        eigenvalue_out[0] = lam


# ---------------------------------------------------------------------------
# QR decomposition (§D.1 lists QR among the library's complex operations)
# ---------------------------------------------------------------------------


def qr_decompose(
    ctx: SPMDContext, n: int, a: ArrayLike, r_out: ArrayLike
) -> None:
    """In-place QR by modified Gram-Schmidt: A <- Q (orthonormal columns),
    r_out <- R (upper triangular).

    Precondition: A is n x n with full column rank, row-block distributed;
    r_out is a local n x n buffer on every copy (each copy computes the
    identical R — the classic replicated-R formulation).
    Postcondition: Q @ R equals the original A; Q.T @ Q == I.

    Column operations need full-column inner products, which for a
    row-block distribution are allreduced partial dot products.
    """
    q = interior(a)
    r = interior(r_out) if not isinstance(r_out, np.ndarray) else r_out
    r[...] = 0.0
    for k in range(n):
        norm_sq_local = float(q[:, k] @ q[:, k])
        norm = float(
            np.sqrt(collectives.allreduce(ctx.comm, norm_sq_local, op="sum"))
        )
        r[k, k] = norm
        q[:, k] /= norm
        if k + 1 < n:
            dots_local = q[:, k] @ q[:, k + 1 :]
            dots = collectives.allreduce(ctx.comm, dots_local, op="sum")
            r[k, k + 1 :] = dots
            q[:, k + 1 :] -= np.outer(q[:, k], dots)


def qr_solve(
    ctx: SPMDContext,
    n: int,
    q: ArrayLike,
    r: ArrayLike,
    b: ArrayLike,
    x: ArrayLike,
) -> None:
    """Solve A x = b given A = QR from :func:`qr_decompose`.

    Precondition: Q row-block distributed, R replicated per copy, B and X
    conformally block-distributed vectors.  Postcondition: X solves the
    system (x = R^{-1} Q.T b); B unchanged.
    """
    q_local = interior(q)
    r_full = interior(r) if not isinstance(r, np.ndarray) else r
    # y = Q.T b: partial products summed across copies.
    y = collectives.allreduce(
        ctx.comm, q_local.T @ interior(b), op="sum"
    )
    # Back substitution on the replicated R (identical on every copy).
    sol = np.zeros(n)
    for k in range(n - 1, -1, -1):
        sol[k] = (y[k] - r_full[k, k + 1 :] @ sol[k + 1 :]) / r_full[k, k]
    rows = interior(x).shape[0]
    base = ctx.index * rows
    interior(x)[:] = sol[base : base + rows]


# ---------------------------------------------------------------------------
# conjugate gradient
# ---------------------------------------------------------------------------


def conjugate_gradient(
    ctx: SPMDContext,
    n: int,
    max_iterations: int,
    tolerance: float,
    a: ArrayLike,
    b: ArrayLike,
    x: ArrayLike,
    residual_out: Optional[Union[OutCell, np.ndarray]] = None,
) -> None:
    """Conjugate-gradient solve of A x = b for symmetric positive-definite
    A (row-block distributed), starting from the current X.

    Postcondition: X holds the iterate with residual 2-norm below
    ``tolerance`` (or after ``max_iterations``); ``residual_out`` reports
    the final residual norm.
    """

    def dot(u_local: np.ndarray, v_local: np.ndarray) -> float:
        return collectives.allreduce(
            ctx.comm, float(u_local @ v_local), op="sum"
        )

    local_a = interior(a)
    local_x = interior(x)
    xg = vec_allgather(ctx, local_x)
    r_local = interior(b) - local_a @ xg
    p_local = r_local.copy()
    rs_old = dot(r_local, r_local)
    final = float(np.sqrt(rs_old))
    for _ in range(max_iterations):
        if final <= tolerance:
            break
        pg = vec_allgather(ctx, p_local)
        ap_local = local_a @ pg
        alpha = rs_old / dot(p_local, ap_local)
        local_x += alpha * p_local
        r_local -= alpha * ap_local
        rs_new = dot(r_local, r_local)
        final = float(np.sqrt(rs_new))
        p_local = r_local + (rs_new / rs_old) * p_local
        rs_old = rs_new
    if residual_out is not None:
        if isinstance(residual_out, OutCell):
            residual_out.set(final)
        else:
            residual_out[0] = final


# ---------------------------------------------------------------------------
# matrix-matrix multiplication
# ---------------------------------------------------------------------------


def mat_mat(
    ctx: SPMDContext, a: ArrayLike, b: ArrayLike, c: ArrayLike
) -> None:
    """C = A @ B for three conformally row-block-distributed matrices.

    Each copy needs all of B's rows: they are assembled by allgather
    (the broadcast-B variant of SPMD matmul, adequate for the library's
    modest matrix sizes), then the local row block of C is one GEMM.
    """
    b_parts = collectives.allgather(ctx.comm, interior(b).copy())
    b_full = np.vstack(b_parts)
    interior(c)[:] = interior(a) @ b_full


def mat_frobenius_norm(
    ctx: SPMDContext, a: ArrayLike, out: Union[OutCell, np.ndarray]
) -> None:
    """out = ||A||_F over the row-block-distributed matrix."""
    local = float(np.sum(interior(a) ** 2))
    total = float(
        np.sqrt(collectives.allreduce(ctx.comm, local, op="sum"))
    )
    if isinstance(out, OutCell):
        out.set(total)
    else:
        out[0] = total


def cholesky_decompose(ctx: SPMDContext, n: int, a: ArrayLike) -> None:
    """In-place Cholesky factorisation of a symmetric positive-definite
    matrix: A <- L with A = L @ L.T (lower triangle; the strict upper
    triangle is zeroed).

    Precondition: A is n x n SPD, row-block distributed.  The same
    owner-broadcast pipeline as :func:`lu_decompose`, with the symmetric
    update restricted to the lower triangle.
    """
    local = interior(a)
    rows = local.shape[0]
    base = ctx.index * rows
    for k in range(n):
        owner = _owner_of_row(k, rows)
        if ctx.index == owner:
            r = k - base
            local[r, k] = np.sqrt(local[r, k])
            if k + 1 < n:
                # the column below the pivot lives in later rows; zero the
                # pivot row's tail (strict upper triangle).
                local[r, k + 1 :] = 0.0
            pivot = float(local[r, k])
        else:
            pivot = None
        pivot = collectives.bcast(ctx.comm, pivot, root=owner)
        # Every copy scales its below-k part of column k, then gathers the
        # full column for the trailing update.
        lo = max(k + 1, base) - base
        if lo < rows:
            local[lo:, k] /= pivot
        column = np.zeros(n)
        if lo < rows:
            column[base + lo : base + rows] = local[lo:, k]
        column = collectives.allreduce(ctx.comm, column, op="sum")
        if lo < rows:
            for r in range(lo, rows):
                j_global = base + r
                local[r, k + 1 : j_global + 1] -= (
                    local[r, k] * column[k + 1 : j_global + 1]
                )


def cholesky_solve(
    ctx: SPMDContext, n: int, l_factor: ArrayLike, b: ArrayLike, x: ArrayLike
) -> None:
    """Solve A x = b given A = L L.T from :func:`cholesky_decompose`.

    Forward substitution with L, back substitution with L.T (each step's
    solved component broadcast from its owner, as in :func:`lu_solve`).
    """
    local_l = interior(l_factor)
    rows = local_l.shape[0]
    base = ctx.index * rows

    y_local = interior(b).astype(np.float64).copy()
    for k in range(n):
        owner = _owner_of_row(k, rows)
        if ctx.index == owner:
            y_local[k - base] /= local_l[k - base, k]
            yk = float(y_local[k - base])
        else:
            yk = None
        yk = collectives.bcast(ctx.comm, yk, root=owner)
        lo = max(k + 1, base) - base
        if lo < rows:
            y_local[lo:] -= local_l[lo:, k] * yk

    # Back substitution with L.T: component k needs column k of L below
    # the diagonal, gathered across copies.
    x_local = interior(x)
    x_local[:] = y_local
    for k in range(n - 1, -1, -1):
        owner = _owner_of_row(k, rows)
        # contributions of already-solved components x_j (j > k) via
        # L[j, k]; each copy owns some of those rows.
        lo = max(k + 1, base) - base
        partial = 0.0
        if lo < rows:
            partial = float(local_l[lo:, k] @ x_local[lo:])
        total = collectives.allreduce(ctx.comm, partial, op="sum")
        if ctx.index == owner:
            r = k - base
            x_local[r] = (x_local[r] - total) / local_l[r, k]
