"""SPMD data-parallel substrate (§1.2.5, §3.1.4, §3.5, §D).

A *called data-parallel program* in the thesis is a multiple-address-space
SPMD program: one copy per processor, each operating on its local section,
communicating point-to-point with its peers.  §3.5 lays out the contract
such programs must satisfy — the key clause being **relocatability**: a
program must run on *any subset* of the available processors, obtaining
processor numbers only from the ``Processors`` array it is passed.

:class:`~repro.spmd.context.SPMDContext` packages that contract: it carries
the processors array, this copy's index, and a group-scoped communicator
whose ranks are indices into the processors array, so programs written
against it are relocatable by construction.
"""

from repro.spmd.context import SPMDContext, OutCell
from repro.spmd.comm import GroupComm
from repro.spmd import (
    collectives,
    costs,
    fft,
    legacy,
    linalg,
    reduce_ops,
    signal,
    stencil,
)

__all__ = [
    "SPMDContext",
    "OutCell",
    "GroupComm",
    "collectives",
    "costs",
    "fft",
    "legacy",
    "linalg",
    "reduce_ops",
    "signal",
    "stencil",
]
