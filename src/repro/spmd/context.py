"""Execution context handed to each copy of a called SPMD program.

A distributed call executes the called program once per processor in the
group (§3.1.4).  Each copy receives an :class:`SPMDContext` packaging the
§3.3.1.2 call environment:

* ``procs`` — the processors array the call was distributed over (the
  relocatability source of processor identity, §3.5);
* ``index`` — this copy's index into ``procs`` (the ``"index"`` parameter);
* ``comm`` — a group/call-scoped communicator for peer communication.

:class:`OutCell` models a by-reference scalar out-parameter (the thesis'
``int *local_status``): the called program assigns it, the wrapper reads it
after the call completes.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Sequence

from repro.spmd.comm import GroupComm
from repro.vp.machine import Machine


class OutCell:
    """A write-once-read-by-caller scalar slot (C's ``type *out``)."""

    __slots__ = ("value", "_assigned", "name")

    def __init__(self, name: str = "out", initial: Any = None) -> None:
        self.value = initial
        self._assigned = False
        self.name = name

    def set(self, value: Any) -> None:
        self.value = value
        self._assigned = True

    @property
    def assigned(self) -> bool:
        return self._assigned

    def __repr__(self) -> str:
        return f"<OutCell {self.name}={self.value!r}>"


class SPMDContext:
    """Per-copy environment for a called data-parallel program."""

    def __init__(
        self,
        machine: Machine,
        procs: Sequence[int],
        index: int,
        group: Hashable,
    ) -> None:
        self.machine = machine
        self.procs = tuple(int(p) for p in procs)
        self.index = int(index)
        self.group = group
        self.comm = GroupComm(machine, self.procs, self.index, group)

    @property
    def num_procs(self) -> int:
        """The ``P`` parameter of the thesis' examples."""
        return len(self.procs)

    @property
    def processor_number(self) -> int:
        """The physical processor this copy executes on."""
        return self.procs[self.index]

    @property
    def node(self):
        """This copy's virtual processor (its address space)."""
        return self.machine.processor(self.processor_number)

    def subcontext(
        self, ranks: Sequence[int], group: Optional[Hashable] = None
    ) -> "SPMDContext":
        """Context for a subgroup of this call's processors."""
        procs = [self.procs[r] for r in ranks]
        index = procs.index(self.processor_number)
        return SPMDContext(
            self.machine,
            procs,
            index,
            group if group is not None else (self.group, "sub"),
        )

    def __repr__(self) -> str:
        return (
            f"<SPMDContext index={self.index}/{self.num_procs} "
            f"on vp{self.processor_number} group={self.group!r}>"
        )
