"""Collective operations over a group communicator.

The thesis' data-parallel model needs "sufficient synchronisation to
maintain the semantics of the programming model" (§1.2.5); SPMD
implementations commonly use barriers and global reductions.  The adapted
van de Velde library (§D) relied on such global-communication routines —
§3.5 requires that they be restrictable to the call's processor subset,
which these are, because they run over a group-scoped
:class:`~repro.spmd.comm.GroupComm`.

Two algorithm families are provided, selectable via ``algorithm=``:

* ``"linear"`` — a master/sequential pattern, O(P) messages per operation
  and O(P) latency (the "loose synchronisation with a master" of §1.2.5);
* ``"tree"`` — binomial/dissemination patterns, O(P log P) or O(P)
  messages with O(log P) latency (SPMD without a master).

The ABL-2 benchmark measures the message-count difference between them.

Reductions fold values in **rank order** so any *associative* operator is
legal, commutative or not — matching the §3.3.1.2 contract, which demands
associativity only.
"""

from __future__ import annotations

import functools
from typing import Any, Optional

from repro.obs.spans import span as obs_span
from repro.spmd.comm import GroupComm
from repro.spmd.reduce_ops import BinaryOp, resolve_op

DEFAULT_ALGORITHM = "tree"


def _traced(fn):
    """Wrap a collective in a ``collective:<name>`` observability span.

    Costs one attribute probe per call while observation is off (the span
    helper returns a shared no-op handle); composed collectives (allreduce
    = reduce + bcast) show up as nested spans.
    """
    name = f"collective:{fn.__name__}"

    @functools.wraps(fn)
    def traced(comm: GroupComm, *args: Any, **kwargs: Any) -> Any:
        # Collectives are flush points for the write-behind coalescer
        # (repro.perf): a barrier/reduction orders this rank's queued
        # writes before anything a peer does afterwards.  Comms marked
        # ``internal`` (the checkpoint quiesce barrier, which runs with
        # every record lock held) are exempt — their synchronisation is
        # below the flush machinery, and flushing inside them could
        # deadlock on those locks.
        perf = getattr(comm.machine, "_perf", None)
        if perf is not None and not getattr(comm, "internal", False):
            perf.coalescer.flush()
        with obs_span(comm.machine, name, rank=comm.rank, size=comm.size):
            return fn(comm, *args, **kwargs)

    return traced


def _tag(comm: GroupComm, name: str):
    """Per-collective tag: successive collectives must not cross-talk.

    SPMD copies execute the same sequence of collectives, so a per-comm
    sequence number advances in lockstep on every rank.
    """
    seq = getattr(comm, "_collective_seq", 0) + 1
    comm._collective_seq = seq  # type: ignore[attr-defined]
    return ("coll", name, seq)


def _check_algorithm(algorithm: str) -> None:
    if algorithm not in ("linear", "tree"):
        raise ValueError(f"algorithm must be 'linear' or 'tree': {algorithm!r}")


# -- barrier ---------------------------------------------------------------------


@_traced
def barrier(comm: GroupComm, algorithm: str = DEFAULT_ALGORITHM) -> None:
    """Block until every rank in the group has arrived (§1.2.5)."""
    _check_algorithm(algorithm)
    tag = _tag(comm, "barrier")
    n = comm.size
    if n == 1:
        return
    if algorithm == "linear":
        if comm.rank == 0:
            for r in range(1, n):
                comm.recv(source_rank=r, tag=tag)
            for r in range(1, n):
                comm.send(r, None, tag=tag)
        else:
            comm.send(0, None, tag=tag)
            comm.recv(source_rank=0, tag=tag)
        return
    # Dissemination barrier: ceil(log2 n) rounds, works for any n.
    k = 1
    round_no = 0
    while k < n:
        comm.send((comm.rank + k) % n, round_no, tag=tag)
        comm.recv(source_rank=(comm.rank - k) % n, tag=tag)
        k *= 2
        round_no += 1


# -- broadcast --------------------------------------------------------------------


@_traced
def bcast(
    comm: GroupComm,
    value: Any = None,
    root: int = 0,
    algorithm: str = DEFAULT_ALGORITHM,
) -> Any:
    """Root's value delivered to every rank."""
    _check_algorithm(algorithm)
    tag = _tag(comm, "bcast")
    n = comm.size
    if n == 1:
        return value
    if algorithm == "linear":
        if comm.rank == root:
            for r in range(n):
                if r != root:
                    comm.send(r, value, tag=tag)
            return value
        return comm.recv(source_rank=root, tag=tag)
    # Binomial tree on ranks relative to root.
    rel = (comm.rank - root) % n
    mask = 1
    while mask < n:
        if rel & mask:
            src = (rel - mask + root) % n
            value = comm.recv(source_rank=src, tag=tag)
            break
        mask *= 2
    mask //= 2
    while mask >= 1:
        if rel + mask < n:
            dest = (rel + mask + root) % n
            comm.send(dest, value, tag=tag)
        mask //= 2
    return value


# -- reduce ------------------------------------------------------------------------


@_traced
def reduce(
    comm: GroupComm,
    value: Any,
    op: BinaryOp = "sum",
    root: int = 0,
    algorithm: str = DEFAULT_ALGORITHM,
) -> Optional[Any]:
    """Fold all ranks' values (in rank order) at ``root``.

    Non-root ranks return None.
    """
    _check_algorithm(algorithm)
    fold = resolve_op(op)
    tag = _tag(comm, "reduce")
    n = comm.size
    if n == 1:
        return value
    if algorithm == "linear":
        if comm.rank == root:
            acc = None
            for r in range(n):
                contrib = value if r == root else comm.recv(
                    source_rank=r, tag=tag
                )
                acc = contrib if acc is None else fold(acc, contrib)
            return acc
        comm.send(root, value, tag=tag)
        return None
    # Binomial reduce toward rank 0 of the root-relative numbering.  The
    # accumulator always holds a contiguous rank range [rel, rel+span), so
    # folding a higher partner's accumulator on the right preserves rank
    # order for non-commutative operators.
    rel = (comm.rank - root) % n
    acc = value
    mask = 1
    while mask < n:
        if rel & mask:
            dest = (rel - mask + root) % n
            comm.send(dest, acc, tag=tag)
            return None
        partner = rel + mask
        if partner < n:
            acc = fold(acc, comm.recv(source_rank=(partner + root) % n, tag=tag))
        mask *= 2
    return acc


@_traced
def allreduce(
    comm: GroupComm,
    value: Any,
    op: BinaryOp = "sum",
    algorithm: str = DEFAULT_ALGORITHM,
) -> Any:
    """Reduce then broadcast: every rank gets the folded value."""
    result = reduce(comm, value, op=op, root=0, algorithm=algorithm)
    return bcast(comm, result, root=0, algorithm=algorithm)


# -- gather family -------------------------------------------------------------------


@_traced
def gather(
    comm: GroupComm, value: Any, root: int = 0
) -> Optional[list]:
    """All ranks' values collected, in rank order, at root."""
    tag = _tag(comm, "gather")
    n = comm.size
    if comm.rank == root:
        out = []
        for r in range(n):
            out.append(value if r == root else comm.recv(source_rank=r, tag=tag))
        return out
    comm.send(root, value, tag=tag)
    return None


@_traced
def scatter(
    comm: GroupComm, values: Optional[list] = None, root: int = 0
) -> Any:
    """Root's ``values[r]`` delivered to rank r."""
    tag = _tag(comm, "scatter")
    n = comm.size
    if comm.rank == root:
        assert values is not None and len(values) == n, (
            "scatter needs one value per rank at the root"
        )
        for r in range(n):
            if r != root:
                comm.send(r, values[r], tag=tag)
        return values[root]
    return comm.recv(source_rank=root, tag=tag)


@_traced
def allgather(
    comm: GroupComm, value: Any, algorithm: str = DEFAULT_ALGORITHM
) -> list:
    """Every rank receives the rank-ordered list of all values."""
    _check_algorithm(algorithm)
    tag = _tag(comm, "allgather")
    n = comm.size
    if n == 1:
        return [value]
    if algorithm == "linear":
        # Gather at 0 then broadcast (master-style).
        collected = gather(comm, value, root=0)
        return bcast(comm, collected, root=0, algorithm="linear")
    # Ring allgather: n-1 rounds, each rank forwards what it just received.
    out: list[Any] = [None] * n
    out[comm.rank] = value
    send_to = (comm.rank + 1) % n
    recv_from = (comm.rank - 1) % n
    carry_index = comm.rank
    carry = value
    for _ in range(n - 1):
        comm.send(send_to, (carry_index, carry), tag=tag)
        carry_index, carry = comm.recv(source_rank=recv_from, tag=tag)
        out[carry_index] = carry
    return out


@_traced
def alltoall(comm: GroupComm, values: list) -> list:
    """``values[r]`` from every rank delivered to rank r, rank-ordered."""
    tag = _tag(comm, "alltoall")
    n = comm.size
    assert len(values) == n, "alltoall needs one value per rank"
    for r in range(n):
        if r != comm.rank:
            comm.send(r, values[r], tag=tag)
    out: list[Any] = [None] * n
    out[comm.rank] = values[comm.rank]
    for r in range(n):
        if r != comm.rank:
            out[r] = comm.recv(source_rank=r, tag=tag)
    return out


@_traced
def scan(comm: GroupComm, value: Any, op: BinaryOp = "sum") -> Any:
    """Inclusive prefix fold in rank order."""
    fold = resolve_op(op)
    tag = _tag(comm, "scan")
    acc = value
    if comm.rank > 0:
        prefix = comm.recv(source_rank=comm.rank - 1, tag=tag)
        acc = fold(prefix, value)
    if comm.rank + 1 < comm.size:
        comm.send(comm.rank + 1, acc, tag=tag)
    return acc
