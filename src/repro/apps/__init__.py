"""The thesis' motivating applications, built on the public API.

* :mod:`~repro.apps.innerproduct` — the §6.1 inner-product example;
* :mod:`~repro.apps.polymul` — §6.2 polynomial multiplication via an
  FFT pipeline (Fig 6.1);
* :mod:`~repro.apps.climate` — the §2.3.1 / Fig 2.1 coupled
  ocean-atmosphere simulation;
* :mod:`~repro.apps.reactor` — the §2.3.3 / Fig 2.3 reactor
  discrete-event simulation;
* :mod:`~repro.apps.animation` — the §2.3.4 / Fig 2.4 animation-frame
  generation.
"""

from repro.apps import (
    aeroelastic,
    animation,
    climate,
    innerproduct,
    polymul,
    reactor,
    signalproc,
)

__all__ = [
    "aeroelastic",
    "animation",
    "climate",
    "innerproduct",
    "polymul",
    "reactor",
    "signalproc",
]
