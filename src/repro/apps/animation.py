"""Animation-frame generation (§2.3.4, Fig 2.4).

"Two or more frames can be generated independently and concurrently, each
by a different data-parallel program."  Frames here are escape-time
renderings of a Julia-set sweep (the classic embarrassingly parallel
renderer): frame k renders the Julia set of c(k) on a row-block-distributed
image array; frames are farmed over disjoint processor groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.calls.params import Index, Local
from repro.core.darray import DistributedArray
from repro.core.farm import FarmResult, TaskFarm
from repro.core.runtime import IntegratedRuntime
from repro.spmd.context import SPMDContext
from repro.spmd.linalg import interior
from repro.status import check_status


def render_julia_rows(
    ctx: SPMDContext,
    index,
    height,
    width,
    c_real,
    c_imag,
    max_iter,
    section,
) -> None:
    """DP program: render this copy's row block of a Julia-set frame.

    Precondition: the image array is (height, width), distributed
    ``(block, "*")`` so each copy owns ``height/P`` full rows.
    Postcondition: section[r, c] = normalised escape iteration count.
    """
    img = interior(section)
    rows = img.shape[0]
    base = int(index) * rows
    h, w = int(height), int(width)
    ys = np.linspace(-1.5, 1.5, h)[base : base + rows]
    xs = np.linspace(-1.5, 1.5, w)
    z = xs[None, :] + 1j * ys[:, None]
    c = complex(float(c_real), float(c_imag))
    iters = int(max_iter)
    count = np.zeros(z.shape, dtype=np.float64)
    live = np.ones(z.shape, dtype=bool)
    for _ in range(iters):
        z[live] = z[live] ** 2 + c
        escaped = live & (np.abs(z) > 2.0)
        live &= ~escaped
        count[live] += 1.0
    img[:] = count / iters


def julia_parameter(frame: int, frames: int) -> complex:
    """The animated parameter path: c sweeps along a small circle."""
    theta = 2.0 * np.pi * frame / max(1, frames)
    return complex(-0.744 + 0.02 * np.cos(theta), 0.148 + 0.02 * np.sin(theta))


@dataclass
class AnimationResult:
    frames: list
    farm_result: FarmResult

    def checksums(self) -> list[float]:
        return [float(f.sum()) for f in self.frames]


def render_frame_on(
    rt: IntegratedRuntime,
    group: Sequence[int],
    shape: tuple[int, int],
    c: complex,
    max_iter: int = 40,
) -> np.ndarray:
    """Render one frame as a distributed call on ``group``."""
    p = len(group)
    image = DistributedArray.create(
        rt.machine, "double", shape, group, [("block", p), "*"]
    )
    try:
        result = rt.call(
            group,
            render_julia_rows,
            [
                Index(),
                shape[0],
                shape[1],
                c.real,
                c.imag,
                max_iter,
                Local(image.array_id),
            ],
        )
        check_status(result.status, "render failed")
        return image.to_numpy()
    finally:
        image.free()


def render_animation(
    rt: IntegratedRuntime,
    frames: int,
    groups: int = 2,
    shape: tuple[int, int] = (32, 32),
    max_iter: int = 40,
) -> AnimationResult:
    """Generate ``frames`` frames over ``groups`` disjoint groups (Fig
    2.4); results are returned in frame order."""
    farm = TaskFarm(rt.split_processors(groups))

    def make_job(k: int):
        def job(group: Sequence[int]):
            return render_frame_on(
                rt, group, shape, julia_parameter(k, frames), max_iter
            )

        return job

    farm_result = farm.run([make_job(k) for k in range(frames)])
    return AnimationResult(frames=farm_result.results, farm_result=farm_result)
