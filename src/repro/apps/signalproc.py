"""Signal-processing pipelines (§2.3.2's motivating workloads).

"Examples of such computations include signal-processing operations like
convolution, correlation, and filtering" — the iterated Fourier-transform
pipeline of Fig 2.2 with different elementwise middle stages.  This module
instantiates that pipeline for the three §2.3.2 operations over the same
four-group structure as the §6.2 polynomial multiplier:

* **convolve** — circular convolution of two N-point signals;
* **correlate** — circular cross-correlation;
* **lowpass** — ideal low-pass filtering of one signal.

All operate on full N-point blocks (circular, no zero padding), which is
the signal-processing setting; the §6.2 polynomial case is the same
pipeline with zero padding folded into phase 1.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.apps.polymul import _FFTGroup
from repro.calls.params import Local
from repro.core.pipeline import Pipeline, PipelineResult, Stage
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd import signal
from repro.status import check_status

_KINDS = ("convolve", "correlate", "lowpass", "scale")


class SpectralProcessor:
    """The Fig 2.2 pipeline with a selectable elementwise middle stage."""

    def __init__(
        self,
        rt: IntegratedRuntime,
        n: int,
        kind: str = "convolve",
        cutoff: float = 0.5,
        gain: float = 1.0,
    ) -> None:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if rt.num_nodes % 4 != 0:
            raise ValueError("the pipeline uses 4 processor groups")
        self.rt = rt
        self.n = n
        self.kind = kind
        self.cutoff = cutoff
        self.gain = gain
        self.binary = kind in ("convolve", "correlate")
        g1a, g1b, gc, g2 = rt.split_processors(4)
        self.grp_1a = _FFTGroup(rt, g1a, n)
        self.grp_1b = _FFTGroup(rt, g1b, n) if self.binary else None
        self.grp_2 = _FFTGroup(rt, g2, n)
        self.procs_c = gc
        self.comb_a = rt.array("double", (2 * n,), gc, ["block"])
        self.comb_b = rt.array("double", (2 * n,), gc, ["block"])

    # -- stages --------------------------------------------------------------

    def _phase1(self, item):
        if self.binary:
            x, y = item
            self.grp_1a.load_bit_reversed(np.asarray(x, dtype=np.complex128))
            self.grp_1b.load_bit_reversed(np.asarray(y, dtype=np.complex128))
            par(self.grp_1a.inverse_fft, self.grp_1b.inverse_fft)
            return self.grp_1a.read_complex(), self.grp_1b.read_complex()
        self.grp_1a.load_bit_reversed(np.asarray(item, dtype=np.complex128))
        self.grp_1a.inverse_fft()
        return self.grp_1a.read_complex()

    def _load_combine(self, array, values: np.ndarray) -> None:
        flat = np.empty(2 * self.n)
        flat[0::2] = values.real
        flat[1::2] = values.imag
        array.from_numpy(flat)

    def _combine(self, spectra):
        if self.binary:
            va, vb = spectra
            self._load_combine(self.comb_a, va)
            self._load_combine(self.comb_b, vb)
            program = (
                signal.combine_convolve
                if self.kind == "convolve"
                else signal.combine_correlate
            )
            result = self.rt.call(
                self.procs_c,
                program,
                [Local(self.comb_a.array_id), Local(self.comb_b.array_id)],
            )
        else:
            self._load_combine(self.comb_b, spectra)
            if self.kind == "lowpass":
                result = self.rt.call(
                    self.procs_c,
                    signal.combine_filter,
                    [self.n, self.cutoff, Local(self.comb_b.array_id)],
                )
            else:
                result = self.rt.call(
                    self.procs_c,
                    signal.combine_scale,
                    [self.gain, Local(self.comb_b.array_id)],
                )
        check_status(result.status, f"{self.kind} combine stage failed")
        flat = self.comb_b.to_numpy()
        return flat[0::2] + 1j * flat[1::2]

    def _phase2(self, values: np.ndarray) -> np.ndarray:
        self.grp_2.load_natural(values)
        self.grp_2.forward_fft()
        return self.grp_2.read_bit_reversed().real

    # -- drivers ----------------------------------------------------------------

    def pipeline(self) -> Pipeline:
        return Pipeline(
            [
                Stage("phase1-inverse-fft", self._phase1),
                Stage(f"combine-{self.kind}", self._combine),
                Stage("phase2-forward-fft", self._phase2),
            ]
        )

    def process_one(self, *signals_in) -> np.ndarray:
        item = signals_in if self.binary else signals_in[0]
        if self.binary and len(signals_in) != 2:
            raise ValueError(f"{self.kind} needs two input signals")
        return self._phase2(self._combine(self._phase1(item)))

    def process_stream(self, items: Iterable) -> PipelineResult:
        return self.pipeline().run(items)

    def free(self) -> None:
        self.grp_1a.free()
        if self.grp_1b is not None:
            self.grp_1b.free()
        self.grp_2.free()
        self.comb_a.free()
        self.comb_b.free()
