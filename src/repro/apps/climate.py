"""Coupled climate simulation (§2.3.1, Fig 2.1).

"The simulation consists of an ocean simulation and an atmosphere
simulation.  Each simulation is a data-parallel program that performs a
time-stepped simulation; at each time step, the two simulations exchange
boundary data.  This exchange of boundary data is performed by a
task-parallel top layer."

Here each domain is a bordered distributed array relaxed by the Jacobi heat
kernel (:mod:`repro.spmd.stencil`); the two domains share an interface: the
atmosphere's bottom row sits above the ocean's top row.  Each step the
task-parallel level reads both interface rows and writes each into the
other domain's interface (a flux-matching Dirichlet exchange) — moving data
between the two distributed arrays strictly through the TP level, as the
model requires (Fig 3.4).

The equivalence claim of FIG-2.1 is verified by :func:`run_reference`:
stepping the components sequentially on one thread of control produces
bit-identical fields, demonstrating the "distributed call ≡ sequential
call" semantics under concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.calls.params import Local
from repro.core.coupled import Component, CoupledResult, CoupledSimulation
from repro.core.darray import DistributedArray
from repro.core.runtime import IntegratedRuntime
from repro.spmd.stencil import heat_steps
from repro.status import check_status


@dataclass
class ClimateDomain:
    """One domain (ocean or atmosphere): a bordered array + its group."""

    name: str
    array: DistributedArray
    processors: Sequence[int]
    grid_rows: int
    grid_cols: int


def _make_domain(
    rt: IntegratedRuntime,
    name: str,
    shape: tuple[int, int],
    processors: Sequence[int],
    initial: float,
    boundary: float,
    grid: Optional[tuple[int, int]] = None,
) -> ClimateDomain:
    """Create a domain array with 1-deep borders, interior ``initial``,
    physical-edge interior cells pinned near ``boundary`` by the halo.

    ``grid`` selects the processor-grid shape; the default decomposes by
    rows only (``(block, "*")``), keeping full-width strips per copy.  A
    2-D grid such as ``(2, 2)`` exercises four-way halo exchange instead
    (the ABL-1 trade-off applied to this application).
    """
    p = len(processors)
    if grid is None:
        grid = (p, 1)
    if grid[0] * grid[1] != p:
        raise ValueError(f"grid {grid} does not use {p} processors")
    array = DistributedArray.create(
        rt.machine,
        "double",
        shape,
        processors,
        [("block", grid[0]), ("block", grid[1])],
        borders=[1, 1, 1, 1],
    )
    field = np.full(shape, initial, dtype=np.float64)
    array.from_numpy(field)
    return ClimateDomain(
        name=name,
        array=array,
        processors=processors,
        grid_rows=grid[0],
        grid_cols=grid[1],
    )


def _domain_step(rt: IntegratedRuntime, domain: ClimateDomain, sweeps: int) -> None:
    result = rt.call(
        domain.processors,
        heat_steps,
        [domain.grid_rows, domain.grid_cols, sweeps, Local(domain.array.array_id)],
    )
    check_status(result.status, f"{domain.name} step failed")


def _exchange_interface(
    rt: IntegratedRuntime,
    ocean: ClimateDomain,
    atmosphere: ClimateDomain,
    coupling: float,
) -> None:
    """TP-level boundary exchange: relax both interface rows toward their
    average (flux matching).  Reads move each row as one region (one
    request per owning processor, not one per element); writes land as
    one fused per-owner ``write_region_local`` carrying only the cells
    that owner holds, executed *at* the owner."""
    o_dims = ocean.array.dims
    a_dims = atmosphere.array.dims
    assert o_dims[1] == a_dims[1], "interface widths must match"
    width = o_dims[1]
    ocean_row = [(0, 1), (0, width)]
    atmos_row = [(a_dims[0] - 1, a_dims[0]), (0, width)]
    ocean_top = ocean.array.read_region(ocean_row)[0]
    atmos_bottom = atmosphere.array.read_region(atmos_row)[0]
    mean = 0.5 * (ocean_top + atmos_bottom)
    new_ocean = (1 - coupling) * ocean_top + coupling * mean
    new_atmos = (1 - coupling) * atmos_bottom + coupling * mean
    # Write back only the interface cells, fused per owning processor:
    # each owner gets one write_region_local carrying exactly its slice
    # of the row, executed at the owner — no whole-row round trip
    # through an intermediary manager hop.
    ocean.array.write_region_targeted(ocean_row, new_ocean[np.newaxis, :])
    atmosphere.array.write_region_targeted(
        atmos_row, new_atmos[np.newaxis, :]
    )


@dataclass
class ClimateRun:
    ocean: np.ndarray
    atmosphere: np.ndarray
    coupled_result: Optional[CoupledResult]

    def interface_gap(self) -> float:
        """|ocean top - atmosphere bottom| after the run; coupling should
        shrink this toward 0."""
        return float(
            np.max(np.abs(self.ocean[0, :] - self.atmosphere[-1, :]))
        )


class ClimateSimulation:
    """The Fig 2.1 system: two domains + TP exchange."""

    def __init__(
        self,
        rt: IntegratedRuntime,
        shape: tuple[int, int] = (8, 16),
        ocean_temp: float = 10.0,
        atmos_temp: float = -10.0,
        coupling: float = 0.5,
        sweeps_per_step: int = 2,
        domain_grid: Optional[tuple[int, int]] = None,
    ) -> None:
        if rt.num_nodes % 2 != 0:
            raise ValueError("climate simulation needs an even node count")
        self.rt = rt
        self.coupling = coupling
        self.sweeps = sweeps_per_step
        g_ocean, g_atmos = rt.split_processors(2)
        self.ocean = _make_domain(
            rt, "ocean", shape, g_ocean, ocean_temp, ocean_temp,
            grid=domain_grid,
        )
        self.atmosphere = _make_domain(
            rt, "atmosphere", shape, g_atmos, atmos_temp, atmos_temp,
            grid=domain_grid,
        )

    def _exchange(self, _components, _k) -> None:
        _exchange_interface(
            self.rt, self.ocean, self.atmosphere, self.coupling
        )

    def run(self, steps: int) -> ClimateRun:
        """Concurrent components, TP exchange each step (the paper's
        structure)."""
        sim = CoupledSimulation(
            [
                Component(
                    "ocean",
                    lambda c, k: _domain_step(self.rt, self.ocean, self.sweeps),
                    self.ocean.processors,
                ),
                Component(
                    "atmosphere",
                    lambda c, k: _domain_step(
                        self.rt, self.atmosphere, self.sweeps
                    ),
                    self.atmosphere.processors,
                ),
            ],
            exchange=self._exchange,
        )
        result = sim.run(steps)
        return ClimateRun(
            ocean=self.ocean.array.to_numpy(),
            atmosphere=self.atmosphere.array.to_numpy(),
            coupled_result=result,
        )

    def run_reference(self, steps: int) -> ClimateRun:
        """Same computation with components stepped *sequentially* —
        the semantic-equivalence baseline for FIG-2.1."""
        for k in range(steps):
            _domain_step(self.rt, self.ocean, self.sweeps)
            _domain_step(self.rt, self.atmosphere, self.sweeps)
            self._exchange(None, k)
        return ClimateRun(
            ocean=self.ocean.array.to_numpy(),
            atmosphere=self.atmosphere.array.to_numpy(),
            coupled_result=None,
        )

    def free(self) -> None:
        self.ocean.array.free()
        self.atmosphere.array.free()
