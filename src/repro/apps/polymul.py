"""Polynomial multiplication using a pipeline and FFT (§6.2, Fig 6.1).

The computational task: multiply pairs of polynomials of degree n-1 (n a
power of two).  For each pair (F, G):

1. zero-pad both to length 2n and evaluate at the 2n-th roots of unity —
   an **inverse** FFT with bit-reversed input (phase 1; the two inputs'
   transforms run *concurrently on two disjoint processor groups*);
2. multiply the value tables elementwise (combine stage);
3. interpolate: a **forward** FFT with natural input, bit-reversed output,
   including the 1/2n scaling (phase 2).

The three steps run as a 3-stage pipeline over a stream of polynomial
pairs, the Fig 6.1 structure: four processor groups (1a, 1b, C, 2), with
groups 1a/1b transforming the two inputs of one pair simultaneously.

``use_element_io=True`` selects the thesis' literal data movement (element
-at-a-time ``write_element``/``read_element`` in bit-reversed order via
``get_input``/``put_output``, §6.2.2); the default moves whole sections,
which is numerically identical and far faster.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.calls.params import Index, Local
from repro.core.pipeline import Pipeline, PipelineResult, Stage
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd.context import SPMDContext
from repro.spmd.fft import (
    FORWARD,
    INVERSE,
    bit_reverse_permutation,
    compute_roots,
    fft_natural,
    fft_reverse,
)
from repro.spmd.linalg import interior
from repro.status import check_status


def combine_multiply(ctx: SPMDContext, local_a, local_b) -> None:
    """The combine stage's data-parallel program: B *= A elementwise over
    pairs-of-doubles complex values (§6.2.2 ``combine``)."""
    a = interior(local_a).view(np.complex128)
    b = interior(local_b).view(np.complex128)
    b *= a


class _FFTGroup:
    """One processor group's FFT workspace: a data array and a roots
    table, created once and reused across pipeline items (the §6.2.2
    driver's A1a/Eps1a etc.).

    ``element_io=True`` moves data element-at-a-time through
    ``write_element``/``read_element`` with explicit ``bit_reverse`` index
    computation — the literal ``get_input``/``pad_input``/``put_output``
    procedures of §6.2.2.  The default moves whole sections; both paths
    are numerically identical (tests assert it), the bulk path is just
    O(P) requests instead of O(N).
    """

    def __init__(
        self, rt: IntegratedRuntime, procs, nn: int, element_io: bool = False
    ) -> None:
        self.rt = rt
        self.procs = procs
        self.nn = nn
        self.element_io = element_io
        p = len(procs)
        self.data = rt.array("double", (2 * nn,), procs, ["block"])
        self.eps = rt.array("double", (p, 2 * nn), procs, ["block", "*"])
        result = rt.call(
            procs,
            lambda ctx, n, sec: compute_roots(ctx, n, sec),
            [nn, self.eps],
        )
        check_status(result.status, "compute_roots failed")
        self.perm = bit_reverse_permutation(nn)

    def load_bit_reversed(self, values: np.ndarray) -> None:
        """§6.2.2 ``get_input``+``pad_input``: store ``values`` (length
        <= nn complex) into the array in bit-reversed order, zero-padded."""
        if self.element_io:
            self._load_bit_reversed_elementwise(values)
            return
        padded = np.zeros(self.nn, dtype=np.complex128)
        padded[: values.size] = values
        reordered = padded[np.argsort(self.perm)]  # slot rho(j) gets x[j]
        flat = np.empty(2 * self.nn)
        flat[0::2] = reordered.real
        flat[1::2] = reordered.imag
        self.data.from_numpy(flat)

    def _load_bit_reversed_elementwise(self, values: np.ndarray) -> None:
        """The literal §6.2.2 loop: for each input element, bit_reverse
        its index and write_element the real/imaginary pair; pad_input
        zeroes the remaining slots the same way."""
        values = np.asarray(values, dtype=np.complex128)
        for j in range(self.nn):
            p_index = int(self.perm[j])
            value = values[j] if j < values.size else 0.0 + 0.0j
            self.data[2 * p_index] = float(np.real(value))
            self.data[2 * p_index + 1] = float(np.imag(value))

    def load_natural(self, values: np.ndarray) -> None:
        flat = np.empty(2 * self.nn)
        flat[0::2] = values.real
        flat[1::2] = values.imag
        self.data.from_numpy(flat)

    def read_complex(self) -> np.ndarray:
        if self.element_io:
            out = np.empty(self.nn, dtype=np.complex128)
            for j in range(self.nn):
                out[j] = self.data[2 * j] + 1j * self.data[2 * j + 1]
            return out
        flat = self.data.to_numpy()
        return flat[0::2] + 1j * flat[1::2]

    def read_bit_reversed(self) -> np.ndarray:
        """§6.2.2 ``put_output``: read in natural order from bit-reversed
        storage (element_io reads element pairs through read_element with
        explicit bit_reverse indexing, exactly as put_output_sub1 does)."""
        if self.element_io:
            out = np.empty(self.nn, dtype=np.complex128)
            for j in range(self.nn):
                p_index = int(self.perm[j])
                out[j] = (
                    self.data[2 * p_index] + 1j * self.data[2 * p_index + 1]
                )
            return out
        return self.read_complex()[self.perm]

    def inverse_fft(self) -> None:
        p = len(self.procs)
        result = self.rt.call(
            self.procs,
            fft_reverse,
            [self.procs, p, Index(), self.nn, INVERSE, self.eps, self.data],
        )
        check_status(result.status, "fft_reverse failed")

    def forward_fft(self) -> None:
        p = len(self.procs)
        result = self.rt.call(
            self.procs,
            fft_natural,
            [self.procs, p, Index(), self.nn, FORWARD, self.eps, self.data],
        )
        check_status(result.status, "fft_natural failed")

    def free(self) -> None:
        self.data.free()
        self.eps.free()


class PolynomialMultiplier:
    """The Fig 6.1 pipeline over a stream of polynomial pairs.

    Requires ``rt.num_nodes`` divisible by 4 (the four groups of §6.2.2:
    Procs1a, Procs1b, ProcsC, Procs2) and n a power of two.
    """

    def __init__(
        self, rt: IntegratedRuntime, n: int, use_element_io: bool = False
    ) -> None:
        if rt.num_nodes % 4 != 0:
            raise ValueError(
                f"the §6.2 program uses 4 processor groups; "
                f"{rt.num_nodes} nodes do not split by 4"
            )
        self.rt = rt
        self.n = n
        self.nn = 2 * n  # the "real" problem size 2n (padded length)
        g1a, g1b, gc, g2 = rt.split_processors(4)
        self.grp_1a = _FFTGroup(rt, g1a, self.nn, element_io=use_element_io)
        self.grp_1b = _FFTGroup(rt, g1b, self.nn, element_io=use_element_io)
        self.grp_2 = _FFTGroup(rt, g2, self.nn, element_io=use_element_io)
        self.procs_c = gc
        # Combine-stage workspace arrays on ProcsC.
        self.comb_a = rt.array("double", (2 * self.nn,), gc, ["block"])
        self.comb_b = rt.array("double", (2 * self.nn,), gc, ["block"])

    # -- pipeline stages ---------------------------------------------------------

    def _phase1(self, pair: tuple[np.ndarray, np.ndarray]) -> tuple:
        """Evaluate both inputs at the roots of unity — the two inverse
        FFTs run concurrently on groups 1a and 1b (Fig 6.1)."""
        f, g = pair
        self.grp_1a.load_bit_reversed(np.asarray(f, dtype=np.complex128))
        self.grp_1b.load_bit_reversed(np.asarray(g, dtype=np.complex128))
        par(self.grp_1a.inverse_fft, self.grp_1b.inverse_fft)
        return self.grp_1a.read_complex(), self.grp_1b.read_complex()

    def _combine(self, values: tuple) -> np.ndarray:
        """Elementwise product of the value tables, on group C."""
        fa, fb = values
        flat = np.empty(2 * self.nn)
        flat[0::2] = fa.real
        flat[1::2] = fa.imag
        self.comb_a.from_numpy(flat)
        flat[0::2] = fb.real
        flat[1::2] = fb.imag
        self.comb_b.from_numpy(flat)
        result = self.rt.call(
            self.procs_c,
            combine_multiply,
            [Local(self.comb_a.array_id), Local(self.comb_b.array_id)],
        )
        check_status(result.status, "combine failed")
        flat = self.comb_b.to_numpy()
        return flat[0::2] + 1j * flat[1::2]

    def _phase2(self, values: np.ndarray) -> np.ndarray:
        """Interpolate: forward FFT on group 2, coefficients out."""
        self.grp_2.load_natural(values)
        self.grp_2.forward_fft()
        coeffs = self.grp_2.read_bit_reversed()
        return coeffs.real  # real inputs -> real product coefficients

    # -- drivers ------------------------------------------------------------------

    def pipeline(self) -> Pipeline:
        return Pipeline(
            [
                Stage("phase1-inverse-fft", self._phase1),
                Stage("combine", self._combine),
                Stage("phase2-forward-fft", self._phase2),
            ]
        )

    def multiply_stream(
        self, pairs: Iterable[tuple[np.ndarray, np.ndarray]]
    ) -> PipelineResult:
        """Multiply a stream of pairs through the concurrent pipeline."""
        return self.pipeline().run(pairs)

    def multiply_stream_sequential(
        self, pairs: Iterable[tuple[np.ndarray, np.ndarray]]
    ) -> PipelineResult:
        """Baseline: the same stages applied item-at-a-time."""
        return self.pipeline().run_sequential(pairs)

    def multiply_one(self, f: np.ndarray, g: np.ndarray) -> np.ndarray:
        return self._phase2(self._combine(self._phase1((f, g))))

    def free(self) -> None:
        self.grp_1a.free()
        self.grp_1b.free()
        self.grp_2.free()
        self.comb_a.free()
        self.comb_b.free()


def polymul_reference(f: np.ndarray, g: np.ndarray) -> np.ndarray:
    """NumPy ground truth, in the same ascending-coefficient order
    (degree-(2n-2) product padded to length 2n)."""
    full = np.convolve(np.asarray(f, float), np.asarray(g, float))
    out = np.zeros(2 * len(f))
    out[: full.size] = full
    return out


def random_pairs(
    n: int, count: int, seed: int = 0
) -> list[tuple[np.ndarray, np.ndarray]]:
    rng = np.random.default_rng(seed)
    return [
        (rng.uniform(-1, 1, n), rng.uniform(-1, 1, n)) for _ in range(count)
    ]
