"""Reactor discrete-event simulation (§2.3.3, Fig 2.3).

"Components of the system include pumps, valves, and the reactor itself.
Depending on the degree of realism desired, the behavior of each component
may require a fairly complicated mathematical model best expressed by a
data-parallel program.  The data-parallel programs representing the
individual components execute concurrently, with communication among them
performed by a task-parallel top-level program."

The graph: a driver emits coolant-demand ticks; the **pump** computes a
flow (its "model" solves a small diagonally-dominant linear system by
distributed Jacobi iteration on its processor group); the **valve**
throttles the flow against a setpoint; the **reactor** advances its 2-D
temperature field one relaxation step (a bordered-stencil distributed
call) with the delivered flow as cooling, and reports the core temperature
back to the driver, which may raise demand — an irregular, data-dependent
event cascade.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calls.params import Local, Reduce
from repro.core.darray import DistributedArray
from repro.core.reactive import Event, ReactiveGraph, ReactiveResult
from repro.core.runtime import IntegratedRuntime
from repro.spmd import collectives
from repro.spmd.linalg import jacobi_iterate, mat_diagonally_dominant, vec_fill
from repro.spmd.linalg import interior
from repro.status import check_status


def _reactor_cool_and_report(ctx, flow, section, tmax_out) -> None:
    """DP model for one reactor event: apply cooling proportional to the
    delivered flow, relax once, report the max core temperature."""
    field = interior(section)
    field *= 1.0 / (1.0 + 0.002 * float(flow))
    t_local = float(field.max())
    t_global = collectives.allreduce(ctx.comm, t_local, op="max")
    tmax_out[0] = t_global


@dataclass
class ReactorTrace:
    result: ReactiveResult
    temperatures: list[float]
    flows: list[float]
    demands: int

    def cooled_down(self, threshold: float) -> bool:
        return bool(self.temperatures) and self.temperatures[-1] < threshold


class ReactorSimulation:
    """The Fig 2.3 component graph wired over an :class:`ReactiveGraph`."""

    def __init__(
        self,
        rt: IntegratedRuntime,
        field_shape: tuple[int, int] = (8, 8),
        pump_system_size: int = 8,
        initial_temperature: float = 900.0,
        safe_temperature: float = 400.0,
        seed: int = 0,
    ) -> None:
        if rt.num_nodes % 2 != 0:
            raise ValueError("reactor simulation needs an even node count")
        self.rt = rt
        self.safe_temperature = safe_temperature
        g_pump, g_reactor = rt.split_processors(2)
        self.g_pump = g_pump
        self.g_reactor = g_reactor

        # Reactor temperature field with stencil borders.
        p = len(g_reactor)
        self.field = DistributedArray.create(
            rt.machine, "double", field_shape, g_reactor,
            [("block", p), "*"], borders=[1, 1, 1, 1],
        )
        self.field.from_numpy(
            np.full(field_shape, initial_temperature, dtype=np.float64)
        )

        # Pump model: A x = b, diagonally dominant; flow = sum(x) scaled.
        n = pump_system_size
        self.pump_n = n
        pp = len(g_pump)
        self.pump_a = rt.array("double", (n, n), g_pump, [("block", pp), "*"])
        self.pump_b = rt.array("double", (n,), g_pump, ["block"])
        self.pump_x = rt.array("double", (n,), g_pump, ["block"])
        check_status(
            rt.call(
                g_pump,
                mat_diagonally_dominant,
                [seed, n, Local(self.pump_a.array_id)],
            ).status
        )

    # -- DP component models -------------------------------------------------------

    def _pump_flow(self, demand: float) -> float:
        """Pump model: solve A x = demand * 1 by Jacobi, flow = mean(x)."""
        n = self.pump_n

        def setup_and_solve(ctx, demand_value, a, b, x, res_out):
            vec_fill(ctx, float(demand_value), b)
            vec_fill(ctx, 0.0, x)
            jacobi_iterate(ctx, n, 25, a, b, x, None)
            local_sum = float(interior(x).sum())
            total = collectives.allreduce(ctx.comm, local_sum, op="sum")
            res_out[0] = total / n

        result = self.rt.call(
            self.g_pump,
            setup_and_solve,
            [
                demand,
                Local(self.pump_a.array_id),
                Local(self.pump_b.array_id),
                Local(self.pump_x.array_id),
                Reduce("double", 1, "max"),
            ],
        )
        check_status(result.status, "pump model failed")
        return float(result.reductions[0]) * self.pump_n * 50.0

    def _reactor_step(self, flow: float) -> float:
        result = self.rt.call(
            self.g_reactor,
            _reactor_cool_and_report,
            [flow, Local(self.field.array_id), Reduce("double", 1, "max")],
        )
        check_status(result.status, "reactor model failed")
        return float(result.reductions[0])

    # -- the event graph ----------------------------------------------------------------

    def run(self, max_ticks: int = 12, timeout: float = 60.0) -> ReactorTrace:
        temperatures: list[float] = []
        flows: list[float] = []
        graph = ReactiveGraph()
        sim = self

        def driver(node, ev: Event):
            if ev.kind == "tick":
                node.state["ticks"] = node.state.get("ticks", 0) + 1
                return [("pump", ev.at(0.1, "demand", node.state["demand"]))]
            if ev.kind == "temperature":
                temp = float(ev.payload)
                temperatures.append(temp)
                ticks = node.state.get("ticks", 0)
                if temp < sim.safe_temperature or ticks >= max_ticks:
                    return []  # quiesce
                # Data-dependent control: hotter core -> higher demand.
                node.state["demand"] = min(
                    4.0, node.state["demand"] * (1.2 if temp > 600 else 1.05)
                )
                return [("driver", ev.at(1.0, "tick"))]
            return []

        def pump(node, ev: Event):
            flow = sim._pump_flow(float(ev.payload))
            flows.append(flow)
            return [("valve", ev.at(0.1, "flow", flow))]

        def valve(node, ev: Event):
            limit = node.state.get("limit", 120.0)
            throttled = min(float(ev.payload), limit)
            return [("reactor", ev.at(0.1, "coolant", throttled))]

        def reactor(node, ev: Event):
            temperature = sim._reactor_step(float(ev.payload))
            return [("driver", ev.at(0.1, "temperature", temperature))]

        graph.add_node("driver", driver, state={"demand": 1.0})
        graph.add_node("pump", pump, processors=self.g_pump)
        graph.add_node("valve", valve, state={"limit": 120.0})
        graph.add_node("reactor", reactor, processors=self.g_reactor)
        # Fig 2.3's fixed component topology, declared strictly: any
        # emission outside these edges is a programming error.
        graph.connect("driver", "pump")
        graph.connect("driver", "driver")  # self-scheduled ticks
        graph.connect("pump", "valve")
        graph.connect("valve", "reactor")
        graph.connect("reactor", "driver")

        result = graph.run(
            [("driver", Event(0.0, "tick"))], timeout=timeout
        )
        return ReactorTrace(
            result=result,
            temperatures=temperatures,
            flows=flows,
            demands=graph.nodes["driver"].state.get("ticks", 0),
        )

    def free(self) -> None:
        self.field.free()
        self.pump_a.free()
        self.pump_b.free()
        self.pump_x.free()
