"""The §6.1 inner-product example.

"A somewhat contrived example [that] briefly illustrates the use of
distributed arrays and a distributed call": create two distributed vectors,
pass them to a data-parallel program that initialises them (element i gets
i+1) and computes their inner product, and return the result through a
reduction variable.

:func:`test_iprdv` transcribes the §6.1.3 specification; :func:`run` is the
§6.1.2 PCN driver as a Python function.
"""

from __future__ import annotations

import numpy as np

from repro.calls.params import Index, Reduce
from repro.core.runtime import IntegratedRuntime
from repro.spmd import collectives
from repro.spmd.context import SPMDContext
from repro.spmd.linalg import interior
from repro.status import check_status


def test_iprdv(ctx: SPMDContext, processors, p, index, m_global, m_local,
               local_v1, local_v2, ipr) -> None:
    """§6.1.3 ``test_iprdv``.

    Precondition: ``processors`` are the call's processors; ``p`` their
    count; ``index`` this copy's index; ``m_global`` the global vector
    length; ``m_local`` the local-section length; ``local_v1``/``local_v2``
    the local sections.  Postcondition: V1[i] == V2[i] == i+1 for all
    global i; ``ipr`` holds the inner product of V1 and V2 (on every copy,
    so any reduction operator — the driver uses max — returns it).
    """
    v1 = interior(local_v1)
    v2 = interior(local_v2)
    base = int(index) * int(m_local)
    v1[:] = np.arange(base, base + int(m_local), dtype=np.float64) + 1.0
    v2[:] = v1
    local = float(v1 @ v2)
    total = collectives.allreduce(ctx.comm, local, op="sum")
    ipr[0] = total


def expected_inner_product(m: int) -> float:
    """Closed form: sum of (i+1)^2 for i in 0..m-1."""
    return float(m * (m + 1) * (2 * m + 1) // 6)


def run(rt: IntegratedRuntime, local_m: int = 4) -> float:
    """The §6.1.2 driver: vectors of length P * local_m, one distributed
    call, returns the inner product."""
    p = rt.num_nodes
    procs = rt.all_processors()
    m = p * local_m
    v1 = rt.array("double", (m,), procs, ["block"])
    v2 = rt.array("double", (m,), procs, ["block"])
    try:
        result = rt.call(
            procs,
            test_iprdv,
            [procs, p, Index(), m, local_m, v1, v2,
             Reduce("double", 1, "max")],
        )
        check_status(result.status, "test_iprdv distributed call failed")
        return float(result.reductions[0])
    finally:
        v1.free()
        v2.free()
