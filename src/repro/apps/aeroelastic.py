"""Aeroelasticity simulation (§2.3.1's second example, multidisciplinary
design and optimization).

"An example is an aeroelasticity simulation of a flexible wing in steady
flight.  Airflow over the wing imposes pressures that affect the shape of
the wing; at the same time, changes in the wing's shape affect the
aerodynamic pressures.  Thus, the problem consists of two interdependent
subproblems, one aerodynamic and one structural ... each subproblem can be
solved by a data-parallel program, with the interaction between them
performed by a task-parallel top-level program."

The model (deliberately simple, but genuinely two-way coupled):

* **aerodynamics** (group A): the pressure along the span responds to the
  local deflection — p = q * (alpha - deflection'), smoothed by a Jacobi
  relaxation on the distributed pressure vector (a stand-in for a panel
  solve);
* **structures** (group B): an elastic foundation model — deflection w
  solves (K + k I) w = p where K is a diagonally dominant stiffness
  matrix, solved by distributed conjugate gradient;
* **task-parallel coupling**: each iteration the TP level feeds the
  aerodynamic pressures into the structural load and the structural
  deflections back into the aerodynamic boundary condition, with
  under-relaxation, until the fixed point converges.

Both component solves are distributed calls on disjoint processor groups;
the fixed-point loop is the task-parallel top level of Fig 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arrays.local_section import LocalSection
from repro.calls.params import Local, Reduce
from repro.core.runtime import IntegratedRuntime
from repro.pcn.composition import par
from repro.spmd.linalg import (
    conjugate_gradient,
    interior,
    mat_diagonally_dominant,
    vec_fill,
)
from repro.status import check_status


def _deflection_halo(ctx, section):
    """Open a depth-1 planned halo exchange for the deflection section,
    or None when the planned path cannot engage (borderless array, no
    perf layer) — the point-to-point fallback handles those."""
    if not isinstance(section, LocalSection) or min(section.borders) < 1:
        return None
    machine = ctx.machine
    manager = getattr(machine, "_array_manager", None)
    plans = getattr(getattr(machine, "_perf", None), "plans", None)
    if plans is None or manager is None or not plans.enabled:
        return None
    record = manager.record_for_section(ctx.node, section)
    if record is None or record.layout.rank != 1:
        return None
    plan = plans.halo_plan("aero_twist", record.array_id)
    if plan is None:
        return None
    sec = record.section_number_for(ctx.processor_number)
    return plan.begin(
        plans, record, section.full(), sec, 1,
        (ctx.group, 0), ctx.processor_number,
    )


def _aero_pressure(ctx, q_dyn, alpha, deflection_in, pressure) -> None:
    """DP aerodynamic model: pressure from incidence minus local twist,
    then one smoothing sweep with halo exchange over the group."""
    w = interior(deflection_in)
    p = interior(pressure)
    # local "twist": finite difference of deflection along the span; the
    # first cell of each section differences against the left neighbour's
    # last cell (root section keeps twist[0] = 0).
    twist = np.zeros_like(w)
    exchange = _deflection_halo(ctx, deflection_in)
    if exchange is not None:
        # Planned path: the neighbour's cell travels as a halo_bulk
        # strip posted here and claimed after the overlapped arithmetic;
        # complete() waits only on the west border — the one this kernel
        # reads (the east strip is posted for the neighbour's benefit).
        exchange.prefetch()
        twist[1:] = w[1:] - w[:-1]
        exchange.complete(sides=("west",))
        if exchange.receives("west"):
            pad = deflection_in.borders[0]
            twist[0] = w[0] - float(deflection_in.full()[pad - 1])
    else:
        twist[1:] = w[1:] - w[:-1]
        if ctx.index + 1 < ctx.num_procs:
            ctx.comm.send(ctx.index + 1, float(w[-1]), tag="last")
        if ctx.index > 0:
            left_last = ctx.comm.recv(source_rank=ctx.index - 1, tag="last")
            twist[0] = w[0] - left_last
    p[:] = float(q_dyn) * (float(alpha) - twist)
    # one smoothing pass (neighbour average) to mimic panel influence
    smoothed = p.copy()
    if p.size >= 3:
        smoothed[1:-1] = 0.25 * p[:-2] + 0.5 * p[1:-1] + 0.25 * p[2:]
    p[:] = smoothed


def _structural_solve(ctx, n, stiffness, load, deflection, res_out) -> None:
    """DP structural model: CG solve of (K) w = load."""
    conjugate_gradient(
        ctx, int(n), 100, 1e-12, stiffness, load, deflection, res_out
    )


@dataclass
class AeroelasticResult:
    iterations: int
    converged: bool
    coupling_history: list
    pressures: np.ndarray
    deflections: np.ndarray

    def final_change(self) -> float:
        return self.coupling_history[-1] if self.coupling_history else 0.0


class AeroelasticSimulation:
    """The two-discipline fixed-point coupling of §2.3.1."""

    def __init__(
        self,
        rt: IntegratedRuntime,
        span_points: int = 16,
        q_dyn: float = 2.0,
        alpha: float = 0.1,
        relaxation: float = 0.7,
        seed: int = 0,
    ) -> None:
        if rt.num_nodes % 2 != 0:
            raise ValueError("aeroelastic simulation needs an even node count")
        if span_points % (rt.num_nodes // 2) != 0:
            raise ValueError("span_points must divide by the group size")
        self.rt = rt
        self.n = span_points
        self.q_dyn = q_dyn
        self.alpha = alpha
        self.relaxation = relaxation
        g_aero, g_struct = rt.split_processors(2)
        self.g_aero = g_aero
        self.g_struct = g_struct

        # Aerodynamic state (group A): pressures + the deflection copy the
        # aero solver reads.
        self.pressure = rt.array("double", (span_points,), g_aero, ["block"])
        # 1-deep borders let the aero solver pull the left neighbour's
        # last deflection cell through a precompiled halo plan
        # (prefetch/complete) instead of a point-to-point scalar message.
        self.aero_deflection = rt.array(
            "double", (span_points,), g_aero, ["block"], borders=[1, 1]
        )
        # Structural state (group B): stiffness, load, deflection.
        p = len(g_struct)
        self.stiffness = rt.array(
            "double", (span_points, span_points), g_struct,
            [("block", p), "*"],
        )
        self.load = rt.array("double", (span_points,), g_struct, ["block"])
        self.deflection = rt.array(
            "double", (span_points,), g_struct, ["block"]
        )
        check_status(
            rt.call(
                g_struct,
                mat_diagonally_dominant,
                [seed, span_points, Local(self.stiffness.array_id)],
            ).status
        )

    # -- one coupled iteration -------------------------------------------------

    def _solve_components(self) -> float:
        """Run both discipline solves concurrently; return the structural
        residual (they read only their own arrays, so the concurrency is
        safe — Fig 3.4)."""

        def aero():
            return self.rt.call(
                self.g_aero,
                _aero_pressure,
                [
                    self.q_dyn,
                    self.alpha,
                    Local(self.aero_deflection.array_id),
                    Local(self.pressure.array_id),
                ],
            )

        def structural():
            return self.rt.call(
                self.g_struct,
                _structural_solve,
                [
                    self.n,
                    Local(self.stiffness.array_id),
                    Local(self.load.array_id),
                    Local(self.deflection.array_id),
                    Reduce("double", 1, "max"),
                ],
            )

        aero_result, struct_result = par(aero, structural)
        check_status(aero_result.status, "aerodynamic solve failed")
        check_status(struct_result.status, "structural solve failed")
        return float(struct_result.reductions[0])

    def _exchange(self) -> float:
        """TP-level coupling: pressures -> structural load, deflections ->
        aero boundary condition (under-relaxed).  Returns the max change
        applied to the load — the fixed-point progress measure."""
        pressures = self.pressure.to_numpy()
        old_load = self.load.to_numpy()
        new_load = (
            (1 - self.relaxation) * old_load + self.relaxation * pressures
        )
        self.load.from_numpy(new_load)
        self.aero_deflection.from_numpy(self.deflection.to_numpy())
        return float(np.max(np.abs(new_load - old_load)))

    def run(
        self, max_iterations: int = 20, tolerance: float = 1e-8
    ) -> AeroelasticResult:
        history = []
        converged = False
        for _ in range(max_iterations):
            self._solve_components()
            change = self._exchange()
            history.append(change)
            if change < tolerance:
                converged = True
                break
        return AeroelasticResult(
            iterations=len(history),
            converged=converged,
            coupling_history=history,
            pressures=self.pressure.to_numpy(),
            deflections=self.deflection.to_numpy(),
        )

    def run_reference(
        self, max_iterations: int = 20, tolerance: float = 1e-8
    ) -> AeroelasticResult:
        """Sequential component stepping — the semantic-equivalence
        baseline (the components' reads/writes are disjoint, so the result
        must be identical)."""
        history = []
        converged = False
        for _ in range(max_iterations):
            check_status(
                self.rt.call(
                    self.g_aero,
                    _aero_pressure,
                    [
                        self.q_dyn,
                        self.alpha,
                        Local(self.aero_deflection.array_id),
                        Local(self.pressure.array_id),
                    ],
                ).status
            )
            check_status(
                self.rt.call(
                    self.g_struct,
                    _structural_solve,
                    [
                        self.n,
                        Local(self.stiffness.array_id),
                        Local(self.load.array_id),
                        Local(self.deflection.array_id),
                        Reduce("double", 1, "max"),
                    ],
                ).status
            )
            change = self._exchange()
            history.append(change)
            if change < tolerance:
                converged = True
                break
        return AeroelasticResult(
            iterations=len(history),
            converged=converged,
            coupling_history=history,
            pressures=self.pressure.to_numpy(),
            deflections=self.deflection.to_numpy(),
        )

    def free(self) -> None:
        for arr in (
            self.pressure,
            self.aero_deflection,
            self.stiffness,
            self.load,
            self.deflection,
        ):
            arr.free()


# ---------------------------------------------------------------------------
# the "optimization" in "multidisciplinary design and optimization"
# ---------------------------------------------------------------------------


@dataclass
class DesignResult:
    """Outcome of the outer design-optimization loop."""

    alpha: float
    lift: float
    target_lift: float
    evaluations: int
    converged: bool

    def lift_error(self) -> float:
        return abs(self.lift - self.target_lift)


def total_lift(sim: "AeroelasticSimulation") -> float:
    """Integrated pressure over the span — the design objective."""
    return float(np.sum(sim.pressure.to_numpy()))


def design_for_lift(
    rt: IntegratedRuntime,
    target_lift: float,
    span_points: int = 16,
    alpha_bounds: tuple = (0.0, 1.0),
    tolerance: float = 1e-6,
    max_evaluations: int = 30,
    seed: int = 0,
) -> DesignResult:
    """Find the angle of attack producing ``target_lift`` (§2.3.1 MDO).

    The outer loop is plain task-parallel control logic (bisection on the
    design variable); every objective evaluation is a full coupled
    aeroelastic solve — concurrent distributed calls under a sequential
    optimizer, the MDO structure the thesis motivates.

    Precondition: lift is monotone in alpha over ``alpha_bounds`` (true
    for this model) and the target lies within the bounds' lift range.
    """

    def evaluate(alpha: float) -> float:
        sim = AeroelasticSimulation(
            rt, span_points=span_points, alpha=alpha, seed=seed
        )
        sim.run(max_iterations=40, tolerance=1e-9)
        lift = total_lift(sim)
        sim.free()
        return lift

    lo, hi = alpha_bounds
    lift_lo = evaluate(lo)
    lift_hi = evaluate(hi)
    evaluations = 2
    if not (min(lift_lo, lift_hi) - tolerance <= target_lift
            <= max(lift_lo, lift_hi) + tolerance):
        return DesignResult(
            alpha=lo if abs(lift_lo - target_lift) < abs(
                lift_hi - target_lift
            ) else hi,
            lift=lift_lo if abs(lift_lo - target_lift) < abs(
                lift_hi - target_lift
            ) else lift_hi,
            target_lift=target_lift,
            evaluations=evaluations,
            converged=False,
        )
    increasing = lift_hi >= lift_lo
    alpha, lift = lo, lift_lo
    while evaluations < max_evaluations:
        alpha = 0.5 * (lo + hi)
        lift = evaluate(alpha)
        evaluations += 1
        if abs(lift - target_lift) <= tolerance:
            return DesignResult(
                alpha=alpha,
                lift=lift,
                target_lift=target_lift,
                evaluations=evaluations,
                converged=True,
            )
        if (lift < target_lift) == increasing:
            lo = alpha
        else:
            hi = alpha
    return DesignResult(
        alpha=alpha,
        lift=lift,
        target_lift=target_lift,
        evaluations=evaluations,
        converged=abs(lift - target_lift) <= tolerance,
    )
