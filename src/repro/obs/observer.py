"""The observer: one-call enablement of runtime telemetry on a machine.

``Machine.observe()`` constructs an :class:`Observer` and installs it:

* sets itself as ``machine._observer`` — the single attribute every
  instrumentation site probes (spans, fault counters, array-manager
  handler timing all stay no-ops until this flips);
* pushes a message-event interceptor onto the transport stack, recording
  a timed event per routed message (stitched to spans by ``trace_id`` and
  ``span``);
* hooks every mailbox (queue depth gauge, delivery counter, receive-wait
  histogram) and subscribes to :mod:`repro.pcn.defvar` suspensions.

``close()`` (or the context-manager exit) reverses all of it, restoring
the exact pre-observation machine.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.pcn import defvar as _defvar
from repro.vp import fabric


class _MessageRecorder:
    """Transport-stack interceptor appending one timed event per message."""

    def __init__(self, observer: "Observer") -> None:
        self.observer = observer

    def __call__(self, message: Any, forward: Any) -> None:
        self.observer._record_event(
            {
                "type": "message",
                "ts": time.perf_counter(),
                "kind": message.kind,
                "trace": message.trace_id,
                "span": message.span_id,
                "hop": message.hop,
                "seq": message.seq,
                "source": message.source,
                "dest": message.dest,
                "nbytes": message.nbytes(),
            }
        )
        forward(message)


class Observer:
    """Spans + metrics + event log for one machine."""

    def __init__(
        self,
        machine: Any,
        spans: bool = True,
        metrics: bool = True,
        messages: bool = True,
        max_spans: int = 100_000,
        max_events: int = 200_000,
    ) -> None:
        self.machine = machine
        self.spans_enabled = spans
        self.metrics_enabled = metrics
        self.messages_enabled = messages
        self.recorder = SpanRecorder(max_spans=max_spans)
        self.metrics = MetricsRegistry()
        self.epoch = time.perf_counter()
        self.max_events = max_events
        self.events_dropped = 0
        self._events: list[dict] = []
        self._events_lock = threading.Lock()
        self._interceptor: Optional[_MessageRecorder] = None
        self._installed = False

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> "Observer":
        if self._installed:
            return self
        self.machine._observer = self
        if self.messages_enabled:
            self._interceptor = _MessageRecorder(self)
            self.machine.transport_stack.push(self._interceptor)
        if self.metrics_enabled:
            for node in self.machine.processors():
                node.mailbox.obs_hooks = self
            _defvar.add_suspend_hook(self._on_defvar_suspend)
        self._installed = True
        return self

    def close(self) -> None:
        """Uninstall every hook; recorded data stays readable."""
        if not self._installed:
            return
        if self._interceptor is not None:
            self.machine.transport_stack.remove(self._interceptor)
            self._interceptor = None
        for node in self.machine.processors():
            if node.mailbox.obs_hooks is self:
                node.mailbox.obs_hooks = None
        _defvar.remove_suspend_hook(self._on_defvar_suspend)
        if getattr(self.machine, "_observer", None) is self:
            self.machine._observer = None
        self._installed = False

    @property
    def installed(self) -> bool:
        return self._installed

    def __enter__(self) -> "Observer":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- span helper ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        """Open a span directly on this observer (observer already known)."""
        from repro.obs.spans import NOOP_SPAN

        if not self.spans_enabled:
            return NOOP_SPAN
        return self.recorder.start(name, attrs)

    # -- event log -------------------------------------------------------------

    def _record_event(self, event: dict) -> None:
        with self._events_lock:
            self._events.append(event)
            if len(self._events) > self.max_events:
                overflow = len(self._events) - self.max_events
                del self._events[:overflow]
                self.events_dropped += overflow

    def events(self) -> list[dict]:
        with self._events_lock:
            return list(self._events)

    # -- metric feed points ----------------------------------------------------

    def mailbox_delivered(self, owner: int, depth: int) -> None:
        self.metrics.counter("repro_mailbox_delivered_total", vp=owner).inc()
        self.metrics.gauge("repro_mailbox_depth", vp=owner).set(depth)

    def mailbox_received(self, owner: int, wait: float, depth: int) -> None:
        self.metrics.histogram(
            "repro_mailbox_recv_wait_seconds", vp=owner
        ).observe(wait)
        self.metrics.gauge("repro_mailbox_depth", vp=owner).set(depth)

    def process_spawned(self, processor: int, live: int) -> None:
        self.metrics.counter(
            "repro_processes_spawned_total", vp=processor
        ).inc()
        self.metrics.gauge("repro_live_processes", vp=processor).set(live)

    def fault_injected(self, fault_type: str) -> None:
        self.metrics.counter(
            "repro_faults_injected_total", type=fault_type
        ).inc()

    def replica_update(self, applied: bool) -> None:
        self.metrics.counter("repro_replica_updates_total").inc()
        if not applied:
            self.metrics.counter("repro_replica_stale_rejects_total").inc()

    def perf_flush(self, ops: int, routed: bool) -> None:
        """One write-coalescer batch flush of ``ops`` fused writes."""
        self.metrics.counter("repro_perf_flushes_total").inc()
        self.metrics.counter("repro_perf_coalesced_writes_total").inc(ops)
        if not routed:
            self.metrics.counter("repro_perf_inline_batches_total").inc()

    def comm_plan(self, event: str) -> None:
        """One halo-plan registry event: ``"compiled"``, ``"hit"``, or
        ``"invalidated"`` (epoch/membership moved under a cached plan)."""
        name = {
            "compiled": "repro_comm_plans_compiled_total",
            "hit": "repro_comm_plans_hits_total",
            "invalidated": "repro_comm_plans_invalidations_total",
        }.get(event)
        if name is not None:
            self.metrics.counter(name).inc()

    def halo_exchange(self, strips: int, nbytes: int) -> None:
        """One completed planned halo exchange (``strips`` fused bulk
        strips claimed into border cells)."""
        self.metrics.counter("repro_halo_exchanges_total").inc()
        self.metrics.counter("repro_halo_strips_total").inc(int(strips))
        self.metrics.counter("repro_halo_bytes_total").inc(int(nbytes))

    def perf_cache(self, hit: bool) -> None:
        """One section-cache lookup on the element-read path."""
        name = (
            "repro_perf_cache_hits_total"
            if hit
            else "repro_perf_cache_misses_total"
        )
        self.metrics.counter(name).inc()

    def array_epoch(self, array_id: Any, epoch: int) -> None:
        self.metrics.gauge(
            "repro_array_epoch", array=str(getattr(array_id, "as_tuple", lambda: array_id)())
        ).set(epoch)

    def section_rebuilt(self, array_id: Any) -> None:
        self.metrics.counter(
            "repro_sections_rebuilt_total",
            array=str(getattr(array_id, "as_tuple", lambda: array_id)()),
        ).inc()

    def section_migrated(self, array_id: Any) -> None:
        """One section moved by a *planned* migration (not recovery)."""
        self.metrics.counter(
            "repro_sections_migrated_total",
            array=str(getattr(array_id, "as_tuple", lambda: array_id)()),
        ).inc()

    # -- health (repro.health failure detection) --------------------------------

    def heartbeat(self, vp: int) -> None:
        self.metrics.counter("repro_heartbeats_total", vp=vp).inc()

    def health_transition(self, vp: int, transition: str) -> None:
        """One detector verdict transition (suspect/alive/dead/
        quarantine/rejoin) for one VP."""
        self.metrics.counter(
            "repro_health_transitions_total", vp=vp, transition=transition
        ).inc()
        if transition == "suspect":
            self.metrics.counter(
                "repro_health_suspicions_total", vp=vp
            ).inc()

    def false_positive(self, vp: int) -> None:
        """A VP the detector declared dead resumed heartbeating."""
        self.metrics.counter(
            "repro_health_false_positives_total", vp=vp
        ).inc()

    def detection_latency(self, seconds: float) -> None:
        """Observed silence at the moment a timeout verdict hardened."""
        self.metrics.histogram(
            "repro_health_detection_latency_seconds"
        ).observe(seconds)

    def fenced_write(self, array: str) -> None:
        """A write/adopt/batch refused by the epoch fencing token."""
        self.metrics.counter(
            "repro_fenced_writes_total", array=array
        ).inc()

    def _on_defvar_suspend(self, label: str) -> None:
        processor = fabric.current_processor()
        self.metrics.counter(
            "repro_defvar_suspensions_total",
            vp="main" if processor is None else processor,
        ).inc()

    # -- deadlock dumps ---------------------------------------------------------

    def record_deadlock(self, edges: Any, last: int = 20) -> None:
        """Append a self-contained deadlock report to the event log.

        ``edges`` is the watchdog's wait-graph; the report carries the
        graph plus the last ``last`` spans of every involved VP, so the
        event log alone explains what each stuck processor was doing.
        """
        import re

        involved: set[int] = set()
        for edge in edges:
            for text in (str(edge.waiter), str(edge.resource)):
                for hit in re.findall(r"(?:vp|@)(\d+)", text):
                    involved.add(int(hit))
        self._record_event(
            {
                "type": "deadlock",
                "ts": time.perf_counter(),
                "wait_graph": [str(e) for e in edges],
                "spans_by_vp": {
                    vp: self.recorder.spans_for_processor(vp, last=last)
                    for vp in sorted(involved)
                },
            }
        )
        self.metrics.counter("repro_deadlocks_total").inc()

    # -- summaries ---------------------------------------------------------------

    def span_summary(self) -> list[tuple]:
        """``(name, count, total_seconds)`` rows, slowest first."""
        totals: dict[str, list] = {}
        for span in self.recorder.spans():
            entry = totals.setdefault(span["name"], [0, 0.0])
            entry[0] += 1
            entry[1] += span["duration"]
        return sorted(
            ((name, c, t) for name, (c, t) in totals.items()),
            key=lambda row: -row[2],
        )

    def diagnostics(self) -> dict:
        return {
            "enabled": self._installed,
            "spans": len(self.recorder.spans()),
            "spans_dropped": self.recorder.dropped,
            "events": len(self.events()),
            "events_dropped": self.events_dropped,
            "metrics": self.metrics.snapshot(),
        }

    # -- exports -----------------------------------------------------------------

    def export_chrome_trace(self, path: str) -> dict:
        from repro.obs.export import export_chrome_trace

        return export_chrome_trace(self, path)

    def export_jsonl(self, path: str) -> int:
        from repro.obs.export import export_jsonl

        return export_jsonl(self, path)

    def export_prometheus(self, path: str) -> str:
        from repro.obs.export import export_prometheus

        return export_prometheus(self, path)
