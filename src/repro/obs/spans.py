"""The causal span layer: timed spans with parent/child links.

A *span* is one timed phase of a logical operation — ``distributed_call``
encloses ``do_all`` encloses each copy's ``wrapper`` encloses the
collectives and array-manager requests the copy makes.  Causality is
carried on the fabric execution context (:mod:`repro.vp.fabric`): the
current span's id rides the same thread-local that already carries the
processor and trace envelope, so it propagates through ``spawn`` and
server-request hops for free, and every routed message is stamped with
the span that sent it — which is how timed spans are stitched to the
per-message records of :class:`~repro.vp.fabric.TraceInterceptor` (they
share the ``trace_id``).

Hot-path discipline: :func:`span` is the only call instrumented code
makes.  With no observer installed on the machine it returns a shared
no-op handle — one ``getattr`` plus an identity check; no allocation, no
locks, no clock reads.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Optional

from repro.vp import fabric

_span_serials = itertools.count()


def new_span_id() -> str:
    """A machine-unique span identifier (deterministic, not wall-clock)."""
    return f"s-{next(_span_serials)}"


class _NoopSpan:
    """Shared do-nothing handle returned when observation is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class SpanHandle:
    """One live span: context manager that records timing + causal links.

    On entry the handle captures the calling thread's fabric context
    (processor, trace id, enclosing span id) and scopes itself in as the
    current span — children created under it, including on threads spawned
    from it and at the far end of server-request hops, parent onto it.  A
    span opened with no ambient trace synthesizes a *root* trace id, so
    all messages routed beneath it share one trace (nothing is ever lumped
    under ``None``).
    """

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id", "processor",
        "attrs", "status", "start", "end", "_recorder", "_scope",
    )

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict) -> None:
        self.name = name
        self.span_id = new_span_id()
        self.attrs = attrs
        self.status = "ok"
        self.start = 0.0
        self.end = 0.0
        self.parent_id: Optional[str] = None
        self.trace_id: Optional[str] = None
        self.processor: Optional[int] = None
        self._recorder = recorder
        self._scope: Optional[fabric.execution_context] = None

    def __enter__(self) -> "SpanHandle":
        self.parent_id = fabric.current_span_id()
        self.processor = fabric.current_processor()
        trace_id, _ = fabric.current_trace()
        if trace_id is None:
            trace_id = fabric.new_trace_id("root")
        self.trace_id = trace_id
        self._scope = fabric.execution_context(
            trace_id=trace_id, span_id=self.span_id
        )
        self._scope.__enter__()
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.end = time.perf_counter()
        if self._scope is not None:
            self._scope.__exit__(exc_type, exc, tb)
            self._scope = None
        if exc_type is not None:
            self.status = "error"
            self.attrs = dict(self.attrs)
            self.attrs["error"] = exc_type.__name__
        self._recorder.record(self)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach extra attributes to the span while it is open."""
        self.attrs = dict(self.attrs)
        self.attrs.update(attrs)

    def as_dict(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "trace": self.trace_id,
            "processor": self.processor,
            "start": self.start,
            "end": self.end,
            "duration": self.end - self.start,
            "status": self.status,
            "attrs": self.attrs,
        }


class SpanRecorder:
    """Bounded store of finished spans (newest kept, oldest dropped)."""

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be positive")
        self.max_spans = max_spans
        self._lock = threading.Lock()
        self._spans: list[dict] = []
        self.dropped = 0

    def start(self, name: str, attrs: dict) -> SpanHandle:
        return SpanHandle(self, name, attrs)

    def record(self, handle: SpanHandle) -> None:
        entry = handle.as_dict()
        with self._lock:
            self._spans.append(entry)
            if len(self._spans) > self.max_spans:
                overflow = len(self._spans) - self.max_spans
                del self._spans[:overflow]
                self.dropped += overflow

    # -- queries -------------------------------------------------------------

    def spans(self) -> list[dict]:
        with self._lock:
            return list(self._spans)

    def spans_named(self, name: str) -> list[dict]:
        return [s for s in self.spans() if s["name"] == name]

    def spans_for_trace(self, trace_id: str) -> list[dict]:
        return [s for s in self.spans() if s["trace"] == trace_id]

    def spans_for_processor(
        self, processor: Optional[int], last: Optional[int] = None
    ) -> list[dict]:
        found = [s for s in self.spans() if s["processor"] == processor]
        return found if last is None else found[-last:]

    def children_of(self, span_id: str) -> list[dict]:
        return [s for s in self.spans() if s["parent"] == span_id]

    def depth_of(self, span: dict) -> int:
        """Ancestor count of a finished span (root span -> 0)."""
        by_id = {s["span"]: s for s in self.spans()}
        depth = 0
        parent = span["parent"]
        while parent is not None and parent in by_id:
            depth += 1
            parent = by_id[parent]["parent"]
        return depth

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0


def span(machine: Any, name: str, **attrs: Any) -> Any:
    """Open a span on ``machine``'s observer, or a shared no-op handle.

    The one call every instrumentation site makes::

        with obs_span(machine, "combine", parts=n):
            ...

    When ``Machine.observe()`` has not been called (or span recording is
    disabled) this costs a single attribute probe and returns the shared
    :data:`NOOP_SPAN`.
    """
    observer = getattr(machine, "_observer", None)
    if observer is None or not observer.spans_enabled:
        return NOOP_SPAN
    return observer.recorder.start(name, attrs)
