"""repro.obs — runtime telemetry: causal spans, metrics, exporters.

The observability layer for the integrated runtime:

* :mod:`repro.obs.spans` — timed spans with parent/child links, carried on
  the fabric execution context and stitched to message records by trace id;
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket histograms
  fed by mailbox/processor/fault/durability hooks;
* :mod:`repro.obs.observer` — :class:`Observer`, installed with one call
  (``machine.observe()``) and removed with ``observer.close()``;
* :mod:`repro.obs.export` — JSONL event log, Chrome trace-event dump
  (``chrome://tracing`` / Perfetto), Prometheus text snapshot.

Everything stays a no-op until an observer is installed: instrumentation
sites probe one machine attribute and bail (see docs/observability.md for
measured overhead).
"""

from repro.obs.export import (
    chrome_trace,
    event_log,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    prometheus_snapshot,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observer import Observer
from repro.obs.spans import NOOP_SPAN, SpanRecorder, new_span_id, span

__all__ = [
    "Observer",
    "SpanRecorder",
    "span",
    "new_span_id",
    "NOOP_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "chrome_trace",
    "validate_chrome_trace",
    "export_chrome_trace",
    "export_jsonl",
    "export_prometheus",
    "prometheus_snapshot",
    "event_log",
]
