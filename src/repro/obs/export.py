"""Trace and metrics exporters.

Three formats, matching how the data is consumed:

* **JSONL event log** (:func:`export_jsonl`) — one JSON object per line:
  every finished span, every message event, plus deadlock dumps; greppable
  and diff-able, the durable record a CI run archives.
* **Chrome trace events** (:func:`chrome_trace`) — the ``traceEvents``
  JSON that ``chrome://tracing`` and Perfetto load: spans become complete
  (``"ph": "X"``) events on one track per virtual processor, messages
  become instants on their source VP's track.
* **Prometheus text** (:func:`prometheus_snapshot`) — the metrics
  registry in text exposition format (see
  :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`).

:func:`validate_chrome_trace` is the schema check CI runs against the
exported file — deliberately strict about the fields the viewers require.
"""

from __future__ import annotations

import json
from typing import Any, Optional

# Track id used for spans recorded on unplaced (top-level) threads, which
# have no virtual processor.  Chrome/Perfetto require integer tids.
MAIN_TRACK = 1_000_000


def _tid(processor: Optional[int]) -> int:
    return MAIN_TRACK if processor is None else int(processor)


def chrome_trace(observer: Any) -> dict:
    """Build the Chrome trace-event document for one observer.

    Timestamps are microseconds relative to the observer's start, one
    thread track per virtual processor (`vp0`, `vp1`, ...) plus a `main`
    track for unplaced threads.
    """
    epoch = observer.epoch
    events: list[dict] = []
    tracks: set[int] = set()

    for span in observer.recorder.spans():
        tid = _tid(span["processor"])
        tracks.add(tid)
        args = {
            "span": span["span"],
            "parent": span["parent"],
            "trace": span["trace"],
            "status": span["status"],
        }
        args.update(
            {k: repr(v) if not isinstance(v, (int, float, str, bool, type(None)))
             else v for k, v in span["attrs"].items()}
        )
        events.append(
            {
                "name": span["name"],
                "cat": "span",
                "ph": "X",
                "ts": (span["start"] - epoch) * 1e6,
                "dur": max(span["duration"], 0.0) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )

    for event in observer.events():
        if event.get("type") != "message":
            continue
        tid = _tid(event.get("source"))
        tracks.add(tid)
        events.append(
            {
                "name": f"msg:{event['kind']}",
                "cat": "message",
                "ph": "i",
                "s": "t",
                "ts": (event["ts"] - epoch) * 1e6,
                "pid": 0,
                "tid": tid,
                "args": {
                    "trace": event.get("trace"),
                    "span": event.get("span"),
                    "dest": event.get("dest"),
                    "nbytes": event.get("nbytes"),
                    "hop": event.get("hop"),
                },
            }
        )

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for tid in sorted(tracks):
        label = "main" if tid == MAIN_TRACK else f"vp{tid}"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(document: Any) -> bool:
    """Check ``document`` against the trace-event schema the viewers need.

    Raises :class:`ValueError` naming the first violation; returns True
    when the document is loadable.
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in event:
                raise ValueError(f"{where} missing {field!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"{where}.name is not a string")
        ph = event["ph"]
        if ph not in ("X", "B", "E", "i", "I", "M", "s", "f", "t"):
            raise ValueError(f"{where}.ph {ph!r} is not a known phase")
        if ph != "M":
            if not isinstance(event.get("ts"), (int, float)):
                raise ValueError(f"{where}.ts must be a number")
            if event["ts"] < 0:
                raise ValueError(f"{where}.ts is negative")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)):
                raise ValueError(f"{where}.dur must be a number")
            if event["dur"] < 0:
                raise ValueError(f"{where}.dur is negative")
        for field in ("pid", "tid"):
            if not isinstance(event[field], int):
                raise ValueError(f"{where}.{field} must be an integer")
    return True


def export_chrome_trace(observer: Any, path: str) -> dict:
    """Write the Chrome trace for ``observer`` to ``path``; returns it."""
    document = chrome_trace(observer)
    validate_chrome_trace(document)
    with open(path, "w") as fh:
        json.dump(document, fh)
    return document


def event_log(observer: Any) -> list[dict]:
    """All events (spans + messages + dumps) ordered by timestamp."""
    entries = [dict(s, ts=s["start"]) for s in observer.recorder.spans()]
    entries.extend(observer.events())
    entries.sort(key=lambda e: e.get("ts", 0.0))
    return entries


def export_jsonl(observer: Any, path: str) -> int:
    """Write the JSONL event log; returns the number of lines written."""
    entries = event_log(observer)
    with open(path, "w") as fh:
        for entry in entries:
            fh.write(json.dumps(entry, default=repr) + "\n")
    return len(entries)


def prometheus_snapshot(observer: Any) -> str:
    return observer.metrics.to_prometheus()


def export_prometheus(observer: Any, path: str) -> str:
    text = prometheus_snapshot(observer)
    with open(path, "w") as fh:
        fh.write(text)
    return text
