"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The thesis evaluates the model through message counts and wall-clock
tables (§3.4.1, §6, §E); this module generalises those two ad-hoc
measurements into a small, thread-safe instrument registry in the style
of a Prometheus client:

* :class:`Counter` — a monotonically increasing count (messages routed,
  faults injected, processes spawned);
* :class:`Gauge` — a value that goes up and down (mailbox depth, live
  processes, array epoch);
* :class:`Histogram` — observations bucketed against a fixed boundary
  list (receive wait times, span durations).

Instruments are identified by ``(name, labels)``; :meth:`MetricsRegistry.
counter` and friends get-or-create, so instrumentation sites never need
to pre-register anything.  :meth:`MetricsRegistry.to_prometheus` renders
the whole registry in the Prometheus text exposition format and
:meth:`MetricsRegistry.snapshot` as a plain dict for tests and
``Machine.diagnostics()``.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, Sequence

# Default histogram boundaries, in seconds: spans from sub-millisecond
# collective hops to multi-second supervised-retry waits.
DEFAULT_BUCKETS: tuple = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_str(labels: tuple) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Any:
        return self.value


class Gauge:
    """A value that may go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> Any:
        return self.value


class Histogram:
    """Observations bucketed against fixed boundaries.

    ``buckets`` is the ordered tuple of upper bounds; an implicit ``+Inf``
    bucket catches everything above the last boundary.  Bucket counts are
    cumulative on export (Prometheus convention) but stored per-bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def sample(self) -> Any:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": {
                    str(b): c for b, c in zip(self.buckets, self._counts)
                },
                "inf": self._counts[-1],
            }


class MetricsRegistry:
    """Thread-safe get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, Any] = {}

    def _get(self, factory, name: str, labels: dict, **kwargs) -> Any:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, key[1], **kwargs)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels,
            buckets=tuple(buckets) if buckets else DEFAULT_BUCKETS,
        )

    def instruments(self) -> list:
        with self._lock:
            return list(self._instruments.values())

    # -- export ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """``{name{labels}: sample}`` for diagnostics and tests."""
        out = {}
        for instrument in self.instruments():
            out[instrument.name + _label_str(instrument.labels)] = (
                instrument.sample()
            )
        return out

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        by_name: dict[str, list] = {}
        kinds: dict[str, str] = {}
        for instrument in self.instruments():
            by_name.setdefault(instrument.name, []).append(instrument)
            kinds[instrument.name] = instrument.kind
        lines = []
        for name in sorted(by_name):
            lines.append(f"# TYPE {name} {kinds[name]}")
            for inst in by_name[name]:
                labels = inst.labels
                if isinstance(inst, Histogram):
                    cumulative = 0
                    sample = inst.sample()
                    for bound in inst.buckets:
                        cumulative += sample["buckets"][str(bound)]
                        le = dict(labels)
                        le["le"] = f"{bound:g}"
                        lines.append(
                            f"{name}_bucket"
                            f"{_label_str(_label_key(le))} {cumulative}"
                        )
                    le = dict(labels)
                    le["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(_label_key(le))} {sample['count']}"
                    )
                    lines.append(
                        f"{name}_sum{_label_str(labels)} {sample['sum']:g}"
                    )
                    lines.append(
                        f"{name}_count{_label_str(labels)} {sample['count']}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_str(labels)} {inst.value:g}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
