"""Command-line interface: ``python -m repro``.

The thesis' Appendix B documents the operational workflow around the
prototype (compile, link, start the array manager, run).  The analogue for
a Python library is a small CLI that lets a user exercise the system
without writing code:

* ``python -m repro info`` — version, layers, machine defaults;
* ``python -m repro demo <name>`` — run one of the thesis' example
  applications (inner product, polymul, climate, reactor, animation,
  aeroelastic, signal);
* ``python -m repro trace <name>`` — same, with the array manager's debug
  trace (the ``am_debug`` variant of §B.3) summarised afterwards, a span
  profile of the run, and optional exports (``--chrome-trace``,
  ``--events``, ``--metrics``) from the observability layer.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional

import numpy as np


def _demo_innerproduct(rt) -> str:
    from repro.apps import innerproduct

    value = innerproduct.run(rt, local_m=4)
    expected = innerproduct.expected_inner_product(rt.num_nodes * 4)
    return f"inner product = {value:g} (expected {expected:g})"


def _demo_polymul(rt) -> str:
    from repro.apps import polymul

    pm = polymul.PolynomialMultiplier(rt, n=16)
    pairs = polymul.random_pairs(16, 4, seed=0)
    result = pm.multiply_stream(pairs)
    ok = all(
        np.allclose(o, polymul.polymul_reference(*p), atol=1e-9)
        for o, p in zip(result.outputs, pairs)
    )
    pm.free()
    return (
        f"multiplied {len(pairs)} polynomial pairs through the pipeline; "
        f"all correct: {ok}; overlap {result.overlap_intervals():.3f}s"
    )


def _demo_climate(rt) -> str:
    from repro.apps.climate import ClimateSimulation

    sim = ClimateSimulation(rt, shape=(8, 16))
    run = sim.run(6)
    sim.free()
    return f"coupled 6 steps; interface gap now {run.interface_gap():.3f}"


def _demo_reactor(rt) -> str:
    from repro.apps.reactor import ReactorSimulation

    sim = ReactorSimulation(rt)
    trace = sim.run(max_ticks=10)
    sim.free()
    temps = ", ".join(f"{t:.0f}" for t in trace.temperatures)
    return f"reactor cooled over {trace.demands} ticks: {temps}"


def _demo_animation(rt) -> str:
    from repro.apps import animation

    result = animation.render_animation(
        rt, frames=4, groups=2, shape=(16, 16), max_iter=20
    )
    return (
        f"rendered {len(result.frames)} frames; jobs per group "
        f"{result.farm_result.jobs_per_group}"
    )


def _demo_aeroelastic(rt) -> str:
    from repro.apps.aeroelastic import AeroelasticSimulation

    sim = AeroelasticSimulation(rt, span_points=16)
    result = sim.run(max_iterations=40)
    sim.free()
    return (
        f"aeroelastic fixed point after {result.iterations} iterations "
        f"(converged: {result.converged})"
    )


def _demo_signal(rt) -> str:
    from repro.apps.signalproc import SpectralProcessor

    proc = SpectralProcessor(rt, 32, kind="correlate")
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, 32)
    lags = proc.process_one(x, np.roll(x, 9))
    proc.free()
    return f"correlation detected shift {int(np.argmax(lags))} (true 9)"


DEMOS: dict[str, Callable] = {
    "innerproduct": _demo_innerproduct,
    "polymul": _demo_polymul,
    "climate": _demo_climate,
    "reactor": _demo_reactor,
    "animation": _demo_animation,
    "aeroelastic": _demo_aeroelastic,
    "signal": _demo_signal,
}

_DEMO_MIN_NODES = {name: 8 for name in DEMOS}
_DEMO_MIN_NODES["innerproduct"] = 1


def cmd_info(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__} — reproduction of Caltech CS-TR-93-01")
    print("layers: pcn / vp / arrays / calls / spmd / core / apps")
    print(f"demos: {', '.join(sorted(DEMOS))}")
    return 0


def cmd_demo(args: argparse.Namespace, trace: bool = False) -> int:
    from repro.core.runtime import IntegratedRuntime

    name = args.name
    if name not in DEMOS:
        print(
            f"unknown demo {name!r}; choose from {', '.join(sorted(DEMOS))}",
            file=sys.stderr,
        )
        return 2
    nodes = args.nodes
    if nodes % 8 != 0 and _DEMO_MIN_NODES[name] == 8:
        print(
            f"demo {name!r} needs a multiple of 8 nodes; got {nodes}",
            file=sys.stderr,
        )
        return 2
    rt = IntegratedRuntime(nodes, trace_arrays=trace)
    observer = rt.observe() if trace else None
    print(f"[{name}] running on {nodes} virtual processors ...")
    print(f"[{name}] {DEMOS[name](rt)}")
    if trace:
        counts = rt.array_manager.request_counts
        print(f"[{name}] array-manager requests:")
        for request_type in sorted(counts):
            print(f"    {request_type:24s} {counts[request_type]}")
    if observer is not None:
        print(f"[{name}] span profile (slowest phases first):")
        for span_name, count, total in observer.span_summary()[:12]:
            print(f"    {span_name:28s} {count:6d} calls  {total:8.4f}s")
        if args.chrome_trace:
            observer.export_chrome_trace(args.chrome_trace)
            print(f"[{name}] chrome trace written to {args.chrome_trace}")
        if args.events:
            n = observer.export_jsonl(args.events)
            print(f"[{name}] {n} events written to {args.events}")
        if args.metrics:
            observer.export_prometheus(args.metrics)
            print(f"[{name}] metrics snapshot written to {args.metrics}")
        observer.close()
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Integrating Task and Data Parallelism — reproduction "
        "of Caltech CS-TR-93-01 (Massingill, 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version and available demos")

    for command, trace in (("demo", False), ("trace", True)):
        p = sub.add_parser(
            command,
            help=(
                "run an example application"
                + (" with array-manager tracing" if trace else "")
            ),
        )
        p.add_argument("name", help=f"one of: {', '.join(sorted(DEMOS))}")
        p.add_argument(
            "--nodes", type=int, default=8,
            help="number of virtual processors (default 8)",
        )
        if trace:
            p.add_argument(
                "--chrome-trace", metavar="PATH", default=None,
                help="write a Chrome/Perfetto trace-event JSON file",
            )
            p.add_argument(
                "--events", metavar="PATH", default=None,
                help="write the span/message event log as JSONL",
            )
            p.add_argument(
                "--metrics", metavar="PATH", default=None,
                help="write a Prometheus text-format metrics snapshot",
            )

    args = parser.parse_args(argv)
    if args.command == "info":
        return cmd_info(args)
    return cmd_demo(args, trace=args.command == "trace")


if __name__ == "__main__":
    raise SystemExit(main())
