"""Fault injection, failure semantics, and supervision.

The thesis' Status protocol (§4.1.2) makes partial failure a *value*; this
package makes partial failure an *input*.  It provides:

* :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.KillSpec`
  — a seeded, deterministic description of message faults (drop, delay,
  duplicate, reorder) and scheduled VP deaths;
* :class:`~repro.faults.transport.FaultyTransport` — installs a plan on a
  machine's transport hook, composable with every existing workload;
* :class:`~repro.faults.partition.PartitionPlan` /
  :class:`~repro.faults.partition.PartitionCut` — named network cuts
  between VP groups with scripted heal times (and one-way asymmetric
  variants), composed into the transport to starve the failure detector
  and manufacture split-brain scenarios;
* :class:`~repro.faults.retry.RetryPolicy` — bounded re-execution with
  deterministic backoff for idempotent distributed calls (the
  Chunks-and-Tasks resilience posture, arXiv:1210.7427);
* :class:`~repro.faults.watchdog.Watchdog` — wait-graph construction over
  suspended DefVar reads and empty-mailbox receives, raising
  :class:`~repro.status.DeadlockError` on collective suspension.

See ``docs/fault_model.md`` for the taxonomy and a cookbook.
"""

from repro.arrays.durability import RecoveryCoordinator, install_recovery
from repro.faults.partition import (
    PartitionCut,
    PartitionPlan,
    random_partitions,
)
from repro.faults.plan import FaultDecision, FaultPlan, KillSpec, random_kills
from repro.faults.retry import (
    AttemptRecord,
    RetryPolicy,
    run_with_retry,
    supervised_call,
)
from repro.faults.transport import FaultStats, FaultyTransport
from repro.faults.watchdog import WaitEdge, Watchdog

__all__ = [
    "AttemptRecord",
    "FaultDecision",
    "FaultPlan",
    "FaultStats",
    "FaultyTransport",
    "KillSpec",
    "PartitionCut",
    "PartitionPlan",
    "RecoveryCoordinator",
    "RetryPolicy",
    "WaitEdge",
    "Watchdog",
    "install_recovery",
    "random_kills",
    "random_partitions",
    "run_with_retry",
    "supervised_call",
]
