"""Deterministic fault plans (§3.4.1 interference, made injectable).

A :class:`FaultPlan` describes *which* message-level faults a run should
experience: drop / duplicate / delay / reorder probabilities, an optional
message-type filter (e.g. perturb only ``DATA_PARALLEL`` traffic, leaving
the task-parallel control plane intact — the §3.4.1 separation in reverse),
and :class:`KillSpec` entries that kill a named virtual processor after its
Nth send or receive.

Determinism: the decision for a message is a pure function of the plan
seed, the (source, dest) channel, and the message's ordinal *on that
channel*.  Per-channel ordinals are stable regardless of how the OS
interleaves different senders, so two runs with the same seed perturb the
same logical messages — the property the retry-convergence acceptance test
relies on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.vp.message import Message, MessageType


@dataclass(frozen=True)
class KillSpec:
    """Kill ``processor`` after its ``after``-th observed event (1-based).

    ``on`` selects the event counted: ``"send"`` (messages routed from the
    processor) or ``"recv"`` (messages delivered to it).
    """

    processor: int
    after: int
    on: str = "send"

    def __post_init__(self) -> None:
        if self.on not in ("send", "recv"):
            raise ValueError(f"KillSpec.on must be 'send' or 'recv', not {self.on!r}")
        if self.after < 1:
            raise ValueError("KillSpec.after is 1-based and must be >= 1")


@dataclass(frozen=True)
class FaultDecision:
    """The faults one message suffers (mutually composable)."""

    drop: bool = False
    duplicate: bool = False
    delay: bool = False
    reorder: bool = False


@dataclass(frozen=True)
class FaultPlan:
    """A seeded description of message-level faults to inject.

    All probabilities are independent per message; ``mtypes`` restricts
    faults to the listed message types (None = all traffic is eligible).
    """

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 0.002
    reorder: float = 0.0
    mtypes: Optional[Tuple[MessageType, ...]] = None
    kinds: Optional[Tuple[str, ...]] = None
    kills: Tuple[KillSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} probability {p} outside [0, 1]")
        # Allow lists/sets at the call site; store as tuples so the plan
        # stays hashable and immutable.
        if self.mtypes is not None and not isinstance(self.mtypes, tuple):
            object.__setattr__(self, "mtypes", tuple(self.mtypes))
        if self.kinds is not None and not isinstance(self.kinds, tuple):
            object.__setattr__(self, "kinds", tuple(self.kinds))
        if not isinstance(self.kills, tuple):
            object.__setattr__(self, "kills", tuple(self.kills))

    def applies_to(self, message: Message) -> bool:
        """Is this message eligible for fault injection?  Filters on the
        §3.4.1 message type and, orthogonally, on the fabric envelope
        ``kind`` — so a plan can perturb e.g. only ``"heartbeat"``
        traffic (detector edge-case tests) or only ``"replica_update"``
        shipments while leaving everything else intact."""
        if self.mtypes is not None and message.mtype not in self.mtypes:
            return False
        return self.kinds is None or message.kind in self.kinds

    def decide(self, message: Message, channel_ordinal: int) -> FaultDecision:
        """Deterministic fault decision for one message.

        ``channel_ordinal`` is the message's 0-based position among all
        messages routed on its (source, dest) channel so far.
        """
        if not self.applies_to(message):
            return FaultDecision()
        rng = random.Random(
            f"{self.seed}:{message.source}:{message.dest}:{channel_ordinal}"
        )
        # Draw in a fixed order so each fault class sees a stable stream.
        return FaultDecision(
            drop=rng.random() < self.drop,
            duplicate=rng.random() < self.duplicate,
            delay=rng.random() < self.delay,
            reorder=rng.random() < self.reorder,
        )

    def kills_for(self, processor: int) -> Sequence[KillSpec]:
        return [k for k in self.kills if k.processor == processor]


def random_kills(
    seed: int,
    processors: Sequence[int],
    count: int = 1,
    max_after: int = 12,
    events: Sequence[str] = ("send", "recv"),
) -> Tuple[KillSpec, ...]:
    """Seeded random kill schedule for fuzzing.

    Draws ``count`` :class:`KillSpec`\\ s — victim from ``processors``,
    trigger event from ``events``, threshold uniform in
    ``[1, max_after]`` — from a generator seeded by ``seed`` alone, so
    the same seed always produces the same schedule.
    """
    if not processors:
        raise ValueError("random_kills needs at least one candidate processor")
    rng = random.Random(f"kills:{seed}")
    return tuple(
        KillSpec(
            processor=int(rng.choice(list(processors))),
            after=rng.randint(1, max_after),
            on=rng.choice(list(events)),
        )
        for _ in range(count)
    )
