"""Fault-injecting interceptor for the machine's transport stack.

:class:`FaultyTransport` is one layer of the machine's interceptor stack
(:class:`~repro.vp.fabric.TransportStack`): every routed message passes
through :meth:`__call__`, which consults the
:class:`~repro.faults.plan.FaultPlan` and then drops, duplicates, delays,
or reorders the message — or forwards it untouched to the layers below.
Kill specs fire here too: after a processor's Nth observed send (routed
from it) or receive (delivered to it), the transport calls
:meth:`Machine.fail` on it.

The interceptor is composable with every existing benchmark and test —
and with other interceptors: install it (or use the context-manager form)
alongside a :class:`~repro.vp.fabric.TraceInterceptor` or
:class:`~repro.vp.fabric.TrafficMeter` and run unchanged workloads;
uninstalling removes only this layer, leaving the rest of the stack as
it was.

Implementation notes:

* *reorder* holds a message back and releases it after the next routed
  message; a short fallback timer flushes a held message when traffic
  stops, so no message is ever lost to reordering.
* *delay* re-delivers on a timer thread; :meth:`flush` forces all pending
  delayed/held messages through (uninstall does this automatically).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.faults.partition import PartitionPlan
from repro.faults.plan import FaultPlan
from repro.vp.machine import Machine
from repro.vp.message import Message

_REORDER_FLUSH_SECONDS = 0.05


@dataclass
class FaultStats:
    """Counts of injected faults (exact, lock-protected)."""

    routed: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    partitioned: int = 0
    killed: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "routed": self.routed,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "partitioned": self.partitioned,
            "killed": list(self.killed),
        }


class FaultyTransport:
    """Stack interceptor applying plan-driven fault injection."""

    def __init__(
        self,
        machine: Machine,
        plan: FaultPlan,
        partitions: Optional[PartitionPlan] = None,
    ) -> None:
        self.machine = machine
        self.plan = plan
        self.partitions = partitions
        self.stats = FaultStats()
        self._lock = threading.Lock()
        self._channel_ordinals: dict[tuple[int, int], int] = {}
        self._send_counts: dict[int, int] = {}
        self._recv_counts: dict[int, int] = {}
        self._fired_kills: set = set()
        self._held: Optional[Message] = None
        self._held_timer: Optional[threading.Timer] = None
        self._pending_delays: dict[int, tuple[Message, threading.Timer]] = {}
        self._delay_ids = itertools.count()
        self._installed = False

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "FaultyTransport":
        if not self._installed:
            if self.partitions is not None:
                # The partition schedule is clock-relative: cuts start
                # counting from the moment injection begins.
                self.partitions.attach()
            self.machine.transport_stack.push(self)
            self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            self.machine.transport_stack.remove(self)
            self._installed = False
        self.flush()

    def __enter__(self) -> "FaultyTransport":
        return self.install()

    def __exit__(self, *exc_info) -> None:
        self.uninstall()

    # -- transport hook ------------------------------------------------------

    def __call__(self, message: Message, forward=None) -> None:
        plan = self.plan
        # Partition check first: a message into a cable break never even
        # reaches the lossy-network dice.  (The plan's own lock guards the
        # schedule; ours guards the stats/ordinal state.)
        severed = (
            self.partitions.severs(message.source, message.dest)
            if self.partitions is not None
            else None
        )
        with self._lock:
            self.stats.routed += 1
            channel = (message.source, message.dest)
            ordinal = self._channel_ordinals.get(channel, 0)
            self._channel_ordinals[channel] = ordinal + 1
            decision = plan.decide(message, ordinal)
            held, self._held = self._held, None
            if self._held_timer is not None:
                self._held_timer.cancel()
                self._held_timer = None

        kills: list[int] = []
        deliver_now: list[Message] = []

        if severed is not None:
            with self._lock:
                self.stats.partitioned += 1
            self._count_fault("partition")
        elif decision.drop:
            with self._lock:
                self.stats.dropped += 1
            self._count_fault("drop")
        elif decision.delay:
            with self._lock:
                self.stats.delayed += 1
            self._count_fault("delay")
            self._schedule_delay(message)
        elif decision.reorder:
            # Hold this message; it will follow the next routed message
            # (or the flush timer, whichever comes first).
            with self._lock:
                self.stats.reordered += 1
                self._held = message
                self._held_timer = threading.Timer(
                    _REORDER_FLUSH_SECONDS, self._flush_held
                )
                self._held_timer.daemon = True
                self._held_timer.start()
            self._count_fault("reorder")
        else:
            deliver_now.append(message)
            if decision.duplicate:
                with self._lock:
                    self.stats.duplicated += 1
                self._count_fault("duplicate")
                deliver_now.append(message)

        if held is not None:
            deliver_now.append(held)

        for msg in deliver_now:
            self._deliver(msg)

        # Kill bookkeeping happens after delivery: "dies after its Nth
        # send/receive" means the Nth event completes, then the VP is dead.
        with self._lock:
            sends = self._send_counts.get(message.source, 0) + 1
            self._send_counts[message.source] = sends
            recvs = self._recv_counts.get(message.dest, 0) + 1
            self._recv_counts[message.dest] = recvs
            for spec in plan.kills:
                if spec in self._fired_kills:
                    continue
                if spec.on == "send" and spec.processor == message.source:
                    if sends >= spec.after:
                        self._fired_kills.add(spec)
                        kills.append(spec.processor)
                elif spec.on == "recv" and spec.processor == message.dest:
                    if recvs >= spec.after:
                        self._fired_kills.add(spec)
                        kills.append(spec.processor)
        for proc in kills:
            with self._lock:
                self.stats.killed.append(proc)
            self._count_fault("kill")
            self.machine.fail(proc)

    def _count_fault(self, fault_type: str) -> None:
        """Mirror one injected fault into the observability metrics."""
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.fault_injected(fault_type)

    # -- delivery helpers ----------------------------------------------------

    def _deliver(self, message: Message) -> None:
        # All deliveries (immediate and timer-driven) go through the
        # layers *below* this interceptor, resolved at delivery time —
        # so a meter beneath us counts surviving messages even when the
        # stack changed between hold and release.
        with self._lock:
            self.stats.delivered += 1
        self.machine.transport_stack.forward_from(self, message)

    def _schedule_delay(self, message: Message) -> None:
        delay_id = next(self._delay_ids)

        def fire() -> None:
            with self._lock:
                entry = self._pending_delays.pop(delay_id, None)
            if entry is not None:
                self._deliver(entry[0])

        timer = threading.Timer(self.plan.delay_seconds, fire)
        timer.daemon = True
        with self._lock:
            self._pending_delays[delay_id] = (message, timer)
        timer.start()

    def _flush_held(self) -> None:
        with self._lock:
            held, self._held = self._held, None
            self._held_timer = None
        if held is not None:
            self._deliver(held)

    def flush(self) -> None:
        """Force every held/delayed message through immediately."""
        with self._lock:
            pending = list(self._pending_delays.values())
            self._pending_delays.clear()
        for message, timer in pending:
            timer.cancel()
            self._deliver(message)
        self._flush_held()
