"""Network partitions: named cuts between VP groups, with heal times.

A :class:`PartitionCut` severs traffic between two disjoint groups of
virtual processors — symmetric (no traffic either way) or asymmetric
(one-way: ``side_a`` cannot reach ``side_b`` but replies still flow).
A :class:`PartitionPlan` holds a set of cuts with scripted activation
(``start_after`` seconds from attach) and heal (``heal_after``) times,
plus manual :meth:`~PartitionPlan.cut` / :meth:`~PartitionPlan.heal`
overrides for tests that want to script the window explicitly.

The plan composes into :class:`~repro.faults.transport.FaultyTransport`
(``FaultyTransport(machine, plan, partitions=...)``): a routed message
whose (source, dest) crosses an active cut is silently discarded —
counted in ``FaultStats.partitioned`` — exactly as a real network drops
packets into a cable break.  Because heartbeats ride the same fabric,
a partition starves the :class:`~repro.health.detector.FailureDetector`
of evidence and drives false suspicion, which is the scenario §9 of
``docs/fault_model.md`` is about: the minority side is declared dead,
its sections are rebuilt on the majority, and after heal the stale
owner must be fenced (epoch check) and rejoined rather than trusted.

:func:`random_partitions` is the seeded schedule factory, sibling to
:func:`~repro.faults.plan.random_kills`, for the fuzz suite.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class PartitionCut:
    """One named cut between two disjoint VP groups.

    ``start_after`` / ``heal_after`` are seconds since the owning plan
    was attached to a transport; ``heal_after=None`` means the cut
    never heals on its own (manual :meth:`PartitionPlan.heal` only).
    ``symmetric=False`` severs only ``side_a -> side_b`` — an
    asymmetric cut, the classic one-way-link failure where A's requests
    vanish but B can still reach A.
    """

    name: str
    side_a: Tuple[int, ...]
    side_b: Tuple[int, ...]
    start_after: float = 0.0
    heal_after: Optional[float] = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.side_a, tuple):
            object.__setattr__(self, "side_a", tuple(self.side_a))
        if not isinstance(self.side_b, tuple):
            object.__setattr__(self, "side_b", tuple(self.side_b))
        if not self.side_a or not self.side_b:
            raise ValueError(f"cut {self.name!r}: both sides must be non-empty")
        overlap = set(self.side_a) & set(self.side_b)
        if overlap:
            raise ValueError(
                f"cut {self.name!r}: sides overlap on {sorted(overlap)}"
            )
        if self.start_after < 0:
            raise ValueError(f"cut {self.name!r}: start_after must be >= 0")
        if self.heal_after is not None and self.heal_after <= self.start_after:
            raise ValueError(
                f"cut {self.name!r}: heal_after must exceed start_after"
            )

    def crosses(self, src: int, dst: int) -> bool:
        """Does (src, dst) traverse this cut (ignoring schedule)?"""
        if src in self.side_a and dst in self.side_b:
            return True
        if self.symmetric and src in self.side_b and dst in self.side_a:
            return True
        return False


class PartitionPlan:
    """A set of cuts with scripted and manual activation.

    The plan is a clock-relative schedule: :meth:`attach` (called by
    ``FaultyTransport.install``, or lazily on first use) starts the
    clock, and each cut is active while
    ``start_after <= elapsed < heal_after``.  Manual overrides win over
    the schedule in both directions: :meth:`cut` forces a named cut
    active, :meth:`heal` forces one (or all) inactive — the fuzz suite
    uses ``heal()`` to close every window before asserting
    convergence.
    """

    def __init__(self, cuts: Iterable[PartitionCut] = ()) -> None:
        self.cuts: Tuple[PartitionCut, ...] = tuple(cuts)
        names = [c.name for c in self.cuts]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate cut names in {names}")
        self._lock = threading.Lock()
        self._attached_at: Optional[float] = None
        # Manual overrides by cut name: True = forced active, False =
        # forced healed.  Absent = follow the schedule.
        self._forced: Dict[str, bool] = {}
        self.severed_count = 0

    def attach(self, now: Optional[float] = None) -> "PartitionPlan":
        """Start (or restart) the schedule clock."""
        with self._lock:
            self._attached_at = time.monotonic() if now is None else now
        return self

    def _elapsed_locked(self) -> float:
        if self._attached_at is None:
            self._attached_at = time.monotonic()
        return time.monotonic() - self._attached_at

    def _active_locked(self, cut: PartitionCut, elapsed: float) -> bool:
        forced = self._forced.get(cut.name)
        if forced is not None:
            return forced
        if elapsed < cut.start_after:
            return False
        return cut.heal_after is None or elapsed < cut.heal_after

    def severs(self, src: int, dst: int) -> Optional[str]:
        """Name of the first active cut severing ``src -> dst``, else
        None.  This is the transport's per-message query."""
        with self._lock:
            elapsed = self._elapsed_locked()
            for cut in self.cuts:
                if cut.crosses(src, dst) and self._active_locked(cut, elapsed):
                    self.severed_count += 1
                    return cut.name
        return None

    def active(self) -> List[str]:
        with self._lock:
            elapsed = self._elapsed_locked()
            return [
                c.name for c in self.cuts if self._active_locked(c, elapsed)
            ]

    def cut(self, name: str) -> None:
        """Force the named cut active now (overrides its schedule)."""
        self._require(name)
        with self._lock:
            self._forced[name] = True

    def heal(self, name: Optional[str] = None) -> None:
        """Force the named cut — or, with no name, every cut — healed."""
        if name is None:
            with self._lock:
                for c in self.cuts:
                    self._forced[c.name] = False
            return
        self._require(name)
        with self._lock:
            self._forced[name] = False

    def _require(self, name: str) -> PartitionCut:
        for c in self.cuts:
            if c.name == name:
                return c
        raise ValueError(f"no cut named {name!r}")

    def snapshot(self) -> dict:
        with self._lock:
            elapsed = (
                self._elapsed_locked() if self._attached_at is not None else 0.0
            )
            return {
                "cuts": [c.name for c in self.cuts],
                "active": [
                    c.name
                    for c in self.cuts
                    if self._active_locked(c, elapsed)
                ],
                "severed": self.severed_count,
            }

    def __repr__(self) -> str:
        return f"<PartitionPlan cuts={[c.name for c in self.cuts]}>"


def random_partitions(
    seed: int,
    processors: Sequence[int],
    isolate: Optional[Sequence[int]] = None,
    count: int = 1,
    max_start: float = 0.3,
    min_duration: float = 0.4,
    max_duration: float = 1.2,
    oneway: float = 0.25,
) -> Tuple[PartitionCut, ...]:
    """Seeded random partition schedule for fuzzing.

    Draws ``count`` cuts from a generator seeded by ``seed`` alone (same
    seed, same schedule — the :func:`~repro.faults.plan.random_kills`
    discipline).  Each cut isolates a strict minority drawn from
    ``isolate`` (default: every processor but the first, so the monitor
    and quorum side stays connected) from the rest of ``processors``,
    starts within ``max_start`` seconds, heals after a duration in
    ``[min_duration, max_duration]``, and is one-way (minority's sends
    vanish, majority's still arrive) with probability ``oneway``.
    """
    processors = [int(p) for p in processors]
    if len(processors) < 2:
        raise ValueError("random_partitions needs at least two processors")
    pool = (
        [int(p) for p in isolate] if isolate is not None else processors[1:]
    )
    pool = [p for p in pool if p in processors]
    if not pool:
        raise ValueError("random_partitions: empty isolation pool")
    max_minority = max(1, (len(processors) - 1) // 2)
    rng = random.Random(f"partitions:{seed}")
    cuts = []
    for i in range(count):
        size = rng.randint(1, min(max_minority, len(pool)))
        minority = tuple(sorted(rng.sample(pool, size)))
        majority = tuple(p for p in processors if p not in minority)
        start = rng.uniform(0.0, max_start)
        cuts.append(
            PartitionCut(
                name=f"part{seed}-{i}",
                side_a=minority,
                side_b=majority,
                start_after=start,
                heal_after=start + rng.uniform(min_duration, max_duration),
                symmetric=rng.random() >= oneway,
            )
        )
    return tuple(cuts)
