"""Supervised retry of distributed calls (failure-resilience-by-re-execution).

The Chunks-and-Tasks line of work (arXiv:1210.7427) recovers from node
failure by re-executing idempotent work; the thesis' Status protocol
(§4.1.2) already turns partial failure into a value.  :class:`RetryPolicy`
combines the two: a distributed call declared *idempotent* may be
re-executed until it yields ``Status.OK``, with exponential backoff and
deterministic jitter between attempts.

VP death (:class:`~repro.status.ProcessorFailedError`), timeouts, and
non-OK statuses are all mapped to ``Status.ERROR`` between attempts; only
the final attempt's failure escapes to the caller.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.status import ProcessorFailedError, Status


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution with exponential backoff + deterministic jitter.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``base_delay * multiplier**attempt * (1 + jitter * u)`` where ``u`` is
    a uniform [0, 1) draw seeded by ``(seed, attempt)`` — the same policy
    object produces the same backoff schedule on every run.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.jitter < 0 or self.multiplier <= 0:
            raise ValueError("backoff parameters must be non-negative")

    def delay(self, attempt: int, label: Optional[str] = None) -> float:
        """Backoff before retrying ``attempt``.

        ``label`` names the supervised call drawing the delay: two
        concurrent calls sharing one policy object get *different* jitter
        streams (seeded by ``(seed, label, attempt)``), so their retries
        do not land on a shared VP in lockstep.  Without a label the
        schedule depends only on ``(seed, attempt)``, as before.
        """
        token = (
            f"{self.seed}:{attempt}"
            if label is None
            else f"{self.seed}:{label}:{attempt}"
        )
        u = random.Random(token).random()
        return self.base_delay * (self.multiplier ** attempt) * (
            1.0 + self.jitter * u
        )


@dataclass
class AttemptRecord:
    """What one attempt of a supervised call produced."""

    attempt: int
    status: Any
    error: Optional[str] = None


def run_with_retry(
    attempt_fn: Callable[[], Any],
    policy: RetryPolicy,
    classify: Callable[[Any], Any],
    sleep: Callable[[float], None] = time.sleep,
    label: Optional[str] = None,
) -> tuple[Any, list[AttemptRecord]]:
    """Drive ``attempt_fn`` under ``policy``.

    ``classify(result)`` returns the attempt's Status; a retryable
    exception (``ProcessorFailedError``/``TimeoutError``) counts as
    ``Status.ERROR``.  Returns ``(last_result_or_exception, history)``;
    the caller decides how to surface the final failure.  ``label``
    decorrelates this call's backoff jitter from other calls sharing the
    policy (see :meth:`RetryPolicy.delay`).
    """
    history: list[AttemptRecord] = []
    last: Any = None
    for attempt in range(policy.max_attempts):
        try:
            result = attempt_fn()
        except (ProcessorFailedError, TimeoutError) as exc:
            history.append(
                AttemptRecord(attempt, Status.ERROR, error=str(exc))
            )
            last = exc
        else:
            status = classify(result)
            history.append(AttemptRecord(attempt, status))
            last = result
            if status is Status.OK or status == int(Status.OK):
                return result, history
        if attempt + 1 < policy.max_attempts:
            sleep(policy.delay(attempt, label))
    return last, history


def supervised_call(
    machine,
    processors: Sequence[int],
    program: Callable[..., Any],
    parameters: Sequence[Any],
    policy: RetryPolicy,
    combine: Optional[Any] = None,
    timeout: Optional[float] = None,
    restore_arrays: Optional[Sequence[Any]] = None,
):
    """An idempotent :func:`~repro.calls.api.distributed_call` under retry.

    Convenience wrapper equivalent to
    ``distributed_call(..., retry=policy, idempotent=True)``.

    ``restore_arrays`` lists distributed arrays (handles or
    :class:`~repro.arrays.record.ArrayID`\\ s) the program mutates: each is
    checkpointed before the first attempt, and every retry restores the
    checkpoints first — so re-execution starts from the pre-attempt epoch
    rather than the torn state a failed attempt half-wrote.
    """
    from repro.calls.api import distributed_call

    return distributed_call(
        machine,
        processors,
        program,
        parameters,
        combine=combine,
        timeout=timeout,
        retry=policy,
        idempotent=True,
        restore_arrays=restore_arrays,
    )
