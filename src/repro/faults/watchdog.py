"""Deadlock detection over suspended processes (§3.1.1.2 semantics).

A PCN program deadlocks when every live process is suspended — blocked
reading an undefined definitional variable or in an empty-mailbox selective
receive — and no one remains to define/send what they wait for.  The seed
code *defined* :class:`~repro.status.DeadlockError` but nothing ever raised
it; blocked programs simply died on the 30-second recv deadline.

:class:`Watchdog` closes that gap.  It joins a set of processes while
sampling two registries:

* :func:`repro.pcn.defvar.blocked_reads` — threads suspended in
  ``DefVar.read``;
* each mailbox's ``blocked_receivers()`` — threads suspended in selective
  or untyped receive.

When *every* live watched process stays suspended for a full ``grace``
window, the watchdog builds the wait-graph (one :class:`WaitEdge` per
suspended process, naming the resource it waits on) and raises
``DeadlockError`` with the graph attached — well before any recv deadline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.pcn import defvar as _defvar
from repro.pcn.process import Process
from repro.status import DeadlockError
from repro.vp.machine import Machine


@dataclass(frozen=True)
class WaitEdge:
    """One edge of the wait-graph: ``waiter`` is suspended on ``resource``.

    ``suspect`` marks an edge whose resource is a selective receive on a
    peer the machine's failure detector currently suspects: such a wait
    is explained by (possibly transient) silence, not by a circular
    dependency, so the watchdog reports it rather than raising.
    """

    waiter: str
    resource: str
    suspect: bool = False

    def __str__(self) -> str:
        base = f"{self.waiter} -> {self.resource}"
        return f"{base} [waiting on suspect]" if self.suspect else base


class Watchdog:
    """Joins processes, converting collective suspension into DeadlockError."""

    def __init__(
        self,
        machine: Optional[Machine] = None,
        poll: float = 0.02,
        grace: float = 0.2,
    ) -> None:
        if poll <= 0 or grace <= 0:
            raise ValueError("poll and grace must be positive")
        self.machine = machine
        self.poll = poll
        self.grace = grace

    # -- sampling ------------------------------------------------------------

    def _blocked_map(self) -> dict[int, tuple[str, Optional[int]]]:
        """thread ident -> (resource description, awaited source VP or
        None) for every suspended thread."""
        blocked: dict[int, tuple[str, Optional[int]]] = {
            ident: (f"defvar:{name}", None)
            for ident, name in _defvar.blocked_reads().items()
        }
        if self.machine is not None:
            for node in self.machine.processors():
                detailed = node.mailbox.blocked_receivers_detailed()
                for ident, (describe, source) in detailed.items():
                    blocked[ident] = (
                        f"mailbox:vp{node.number} {describe}",
                        source,
                    )
        return blocked

    def _source_suspect(self, source: Optional[int]) -> bool:
        if source is None or self.machine is None:
            return False
        health = getattr(self.machine, "_health", None)
        return health is not None and health.is_suspect(source)

    def _edge(self, name: str, entry: tuple[str, Optional[int]]) -> WaitEdge:
        describe, source = entry
        return WaitEdge(name, describe, suspect=self._source_suspect(source))

    def wait_graph(self, processes: Sequence[Process]) -> list[WaitEdge]:
        """The current wait-graph restricted to ``processes``."""
        blocked = self._blocked_map()
        edges = []
        for proc in processes:
            if proc.is_alive() and proc.ident in blocked:
                edges.append(self._edge(proc.name, blocked[proc.ident]))
        return edges

    # -- joining -------------------------------------------------------------

    def join(
        self, processes: Sequence[Process], timeout: Optional[float] = None
    ) -> list:
        """Join every process, watching for collective suspension.

        Returns the processes' results (re-raising the first captured
        error, like ``ProcessGroup.join_all``).  Raises ``DeadlockError``
        with the wait-graph attached if every live process stays suspended
        for a full grace window.
        """
        procs = list(processes)
        deadline = None if timeout is None else time.monotonic() + timeout
        suspended_since: Optional[float] = None
        while True:
            alive = [p for p in procs if p.is_alive()]
            if not alive:
                break
            blocked = self._blocked_map()
            if all(p.ident in blocked for p in alive):
                edges = [self._edge(p.name, blocked[p.ident]) for p in alive]
                if any(e.suspect for e in edges):
                    # A wait on a suspected peer is explained by silence
                    # the detector is still adjudicating — either the
                    # suspect resumes (the wait satisfies) or it is
                    # declared dead (the receiver fails fast / times
                    # out).  Neither is a circular wait, so the grace
                    # clock resets instead of a false DeadlockError.
                    suspended_since = None
                    if deadline is not None and time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"watchdog join timed out with {len(alive)} "
                            "process(es) still running: "
                            + "; ".join(str(e) for e in edges)
                        )
                    time.sleep(self.poll)
                    continue
                now = time.monotonic()
                if suspended_since is None:
                    suspended_since = now
                elif now - suspended_since >= self.grace:
                    graph = "; ".join(str(e) for e in edges)
                    observer = getattr(self.machine, "_observer", None)
                    if observer is not None:
                        # Post-mortem dump: the wait-graph plus each
                        # involved VP's most recent spans land in the
                        # event log before the error propagates.
                        observer.record_deadlock(edges)
                    raise DeadlockError(
                        f"all {len(alive)} live process(es) suspended for "
                        f">= {self.grace}s: {graph}",
                        wait_graph=edges,
                    )
            else:
                suspended_since = None
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"watchdog join timed out with {len(alive)} process(es) "
                    "still running"
                )
            time.sleep(self.poll)

        results = []
        first_error: Optional[BaseException] = None
        for proc in procs:
            try:
                results.append(proc.join(timeout=0))
            except BaseException as exc:  # noqa: BLE001
                if first_error is None:
                    first_error = exc
                results.append(None)
        if first_error is not None:
            raise first_error
        return results
