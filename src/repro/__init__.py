"""repro — a reproduction of *Integrating Task and Data Parallelism*
(Berna Massingill, Caltech CS-TR-93-01, 1993).

The package implements the thesis' programming model: a task-parallel
program (PCN-style composition, single-assignment variables, streams) that
can create **distributed arrays** and make **distributed calls** to SPMD
data-parallel programs, with the call semantically equivalent to a
sequential subprogram call.

Quickstart::

    from repro import IntegratedRuntime
    from repro.apps import innerproduct

    rt = IntegratedRuntime(8)
    print(innerproduct.run(rt))          # the thesis' §6.1 example

Layers (bottom-up):

* :mod:`repro.pcn` — the task-parallel notation's semantics;
* :mod:`repro.vp` — the simulated multicomputer (virtual processors,
  typed messages, the server mechanism);
* :mod:`repro.arrays` — distributed arrays and the array manager;
* :mod:`repro.calls` — distributed calls (do_all, wrapper, combine);
* :mod:`repro.spmd` — the data-parallel substrate (communicators,
  collectives, linear algebra, FFT, stencils);
* :mod:`repro.core` — the pythonic public API and the §2.3 problem-class
  helpers;
* :mod:`repro.apps` — the thesis' example applications.
"""

from repro.core.runtime import IntegratedRuntime
from repro.core.darray import DistributedArray
from repro.status import (
    Status,
    ReproError,
    InvalidParameterError,
    ArrayNotFoundError,
    DeadlockError,
    ProcessorFailedError,
)

__version__ = "1.1.0"

__all__ = [
    "IntegratedRuntime",
    "DistributedArray",
    "Status",
    "ReproError",
    "InvalidParameterError",
    "ArrayNotFoundError",
    "DeadlockError",
    "ProcessorFailedError",
    "__version__",
]
