"""repro.perf: the batching-and-caching layer over the array manager.

Installed automatically by
:func:`~repro.arrays.manager.install_array_manager` as ``machine._perf``;
see :mod:`repro.perf.coalescer` (write-behind batching),
:mod:`repro.perf.cache` (epoch-validated read caching), and
``docs/performance.md`` for the flush-point consistency argument.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Optional

from repro.perf.cache import SectionCache, SectionVersions
from repro.perf.coalescer import (
    ARRAY_BATCH_KIND,
    ArrayBatch,
    WriteCoalescer,
    define_once,
)
from repro.perf.commplan import (
    HALO_BULK_KIND,
    CommPlan,
    HaloExchange,
    HaloStrip,
    PlanRegistry,
    StalePlanError,
    compile_halo_plan,
)

__all__ = [
    "ARRAY_BATCH_KIND",
    "ArrayBatch",
    "CommPlan",
    "HALO_BULK_KIND",
    "HaloExchange",
    "HaloStrip",
    "PerfLayer",
    "PlanRegistry",
    "SectionCache",
    "SectionVersions",
    "StalePlanError",
    "WriteCoalescer",
    "coalescing_disabled",
    "compile_halo_plan",
    "define_once",
    "get_perf_layer",
]


class PerfLayer:
    """One machine's perf state: coalescer + cache + section versions."""

    def __init__(self, machine: Any, manager: Any) -> None:
        self.machine = machine
        self.coalescer = WriteCoalescer(machine, manager)
        self.cache = SectionCache()
        self.versions = SectionVersions()
        self.plans = PlanRegistry(machine, manager)

    def flush(
        self, array_id: Any = None, section: Optional[int] = None
    ) -> int:
        """Force pending coalesced writes out (write-behind barrier)."""
        return self.coalescer.flush(array_id, section)

    def drop_array(self, array_id: Any) -> int:
        """Forget a freed array: pending writes, cache entries, versions."""
        dropped = self.coalescer.discard(array_id)
        self.cache.drop_array(array_id)
        self.versions.drop_array(array_id)
        self.plans.drop_array(array_id)
        return dropped

    def diagnostics(self) -> dict:
        coalescer = self.coalescer.diagnostics()
        cache = self.cache.diagnostics()
        return {
            "enabled": coalescer["enabled"],
            # The headline counters named by Machine.diagnostics()["perf"]:
            "flushes": coalescer["flushes"],
            "coalesced_writes": coalescer["flushed_ops"],
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "coalescer": coalescer,
            "cache": cache,
            "comm_plans": self.plans.diagnostics(),
        }


def get_perf_layer(machine: Any) -> Optional[PerfLayer]:
    """The machine's perf layer (None before the array manager loads)."""
    return getattr(machine, "_perf", None)


@contextmanager
def coalescing_disabled(machine: Any):
    """Temporarily run with the per-write path (benchmark baselines).

    Flushes pending writes first so the two regimes never interleave.
    """
    perf = get_perf_layer(machine)
    if perf is None:
        yield
        return
    perf.coalescer.flush()
    previous = perf.coalescer.enabled
    perf.coalescer.enabled = False
    try:
        yield
    finally:
        perf.coalescer.enabled = previous
