"""Precompiled halo-exchange communication plans (ROADMAP item 5).

Every stencil sweep used to discover its communication on demand —
per-edge strips sent the moment a sweep needed them.  But the pattern is
fully determined by the :class:`~repro.arrays.layout.ArrayLayout` before
the first iteration: which sections are adjacent, which interior slices
feed which border slices, and how deep the exchange must be.  This module
compiles that knowledge once into a :class:`CommPlan` and ships it as
fused ``kind="halo_bulk"`` messages — **one** message per neighbour per
exchange phase, issued ahead of the compute phase and overlapped with
interior work through the ``prefetch()/complete()`` split.

Deep borders buy communication *avoidance* on top of fusion: with
uniform borders of depth ``d``, one exchange of depth ``k <= d`` is
enough for ``k`` consecutive 5-point sweeps.  Each copy redundantly
recomputes a shrinking frame of its halo cells (sweep ``j`` updates the
region extended by ``k-1-j`` cells toward every neighbour), and because
that frame computation runs the *same arithmetic on the same values* as
the neighbour's own interior update, the result is bit-identical to
exchanging every sweep — the sequential-equivalence argument in
``docs/performance.md``.

Corner data never travels diagonally.  A rank-2 exchange runs two
ordered stages: stage 0 swaps row strips spanning only interior columns;
stage 1 swaps column strips spanning the *full* row range including the
freshly filled stage-0 halo rows, so each east/west strip relays the
diagonal neighbour's corner block through the orthogonal neighbour.  On
physical edges the relayed rows carry the sender's fixed boundary cells —
exactly the values the receiver's frame computation must read there.

Epoch correctness rides the existing ``STALE_EPOCH`` machinery: a plan
captures ``(epoch, processors)`` at compile time and the registry
revalidates both against the durability state on every fetch (recovery,
``migrate_sections``, ``rebalance_array`` and rejoin all bump the
epoch).  Every strip is stamped with the sender's record epoch and the
``halo_bulk`` kind handler refuses stale strips the same way the write
path does — ``note_fenced`` plus the ``repro_fenced_writes_total``
counter — so a stale plan can *never* fill a border.

Delivery discipline: the kind handler never touches section storage.  It
fences, deduplicates, and stashes the strip in a per-``(edge, call,
phase)`` rendezvous :class:`~repro.pcn.defvar.DefVar`; the receiving
copy's own thread claims and applies it inside ``complete()``.  A strip
from a later phase (or an aborted earlier call) therefore sits inert
until claimed and can never race a kernel mid-sweep, and application is
exactly-once under drop/duplicate fault injection because each
rendezvous variable is single-assignment and claimed once.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.spans import span as obs_span
from repro.pcn.defvar import DefVar
from repro.perf.coalescer import define_once
from repro.status import ProcessorFailedError, SingleAssignmentError
from repro.vp.message import Message

HALO_BULK_KIND = "halo_bulk"

# Receiver-relative side names — the side of the *destination* section a
# strip lands on.  Rank 2 uses compass names (axis 0 = rows, axis 1 =
# columns); rank 1 reuses west/east along its single axis.
_SIDE_NAMES = {
    2: {
        (0, "low"): "north",
        (0, "high"): "south",
        (1, "low"): "west",
        (1, "high"): "east",
    },
    1: {(0, "low"): "west", (0, "high"): "east"},
}


class StalePlanError(RuntimeError):
    """A halo transfer was fenced by the epoch machinery: the plan (or a
    peer's record) predates a membership rewrite.  Callers recompile via
    :meth:`PlanRegistry.halo_plan` and retry the phase — distributed-call
    supervision does exactly that by failing and re-running the call."""


class PlanEdge:
    """One directed neighbour adjacency: data flows ``src_section ->
    dest_section`` and lands on the destination's ``side``."""

    __slots__ = ("axis", "direction", "side", "stage", "src_section",
                 "dest_section")

    def __init__(self, axis: int, direction: str, side: str, stage: int,
                 src_section: int, dest_section: int) -> None:
        self.axis = axis
        self.direction = direction
        self.side = side
        self.stage = stage
        self.src_section = src_section
        self.dest_section = dest_section

    def __repr__(self) -> str:
        return (f"<PlanEdge {self.src_section}->{self.dest_section} "
                f"side={self.side} stage={self.stage}>")


class Transfer:
    """A :class:`PlanEdge` made concrete at exchange depth ``k``:
    ``src_slices`` select the sender's interior strip in its full
    (bordered) view, ``dest_slices`` the receiver's border cells."""

    __slots__ = ("edge", "depth", "src_slices", "dest_slices")

    def __init__(self, edge: PlanEdge, depth: int,
                 src_slices: tuple, dest_slices: tuple) -> None:
        self.edge = edge
        self.depth = depth
        self.src_slices = src_slices
        self.dest_slices = dest_slices


class HaloStrip:
    """The payload of one ``kind="halo_bulk"`` message.

    ``token`` is ``(call group, phase index)`` — unique per exchange
    phase, so duplicated, delayed, or orphaned strips can never collide
    with a later phase's rendezvous.  ``epoch`` is the sender's record
    epoch at capture time; the receiver's kind handler fences strips
    older than the authoritative durability epoch.  ``done`` is the
    acknowledgement variable the sender's retry loop waits on.
    """

    __slots__ = ("array_id", "src_section", "dest_section", "side", "stage",
                 "token", "epoch", "dest_slices", "data", "done")

    def __init__(self, array_id: Any, src_section: int, dest_section: int,
                 side: str, stage: int, token: tuple, epoch: int,
                 dest_slices: tuple, data: Any,
                 done: Optional[DefVar]) -> None:
        self.array_id = array_id
        self.src_section = src_section
        self.dest_section = dest_section
        self.side = side
        self.stage = stage
        self.token = token
        self.epoch = epoch
        self.dest_slices = dest_slices
        self.data = data
        self.done = done

    def key(self) -> tuple:
        return (self.array_id.as_tuple(), self.src_section,
                self.dest_section, self.side, self.stage, self.token)

    @property
    def nbytes(self) -> int:
        return int(getattr(self.data, "nbytes", 8)) + 64

    def __repr__(self) -> str:
        return (f"<HaloStrip {self.array_id} {self.src_section}->"
                f"{self.dest_section} side={self.side} stage={self.stage} "
                f"token={self.token} epoch={self.epoch}>")


def compile_halo_plan(op: str, array_id: Any, layout: Any, epoch: int,
                      processors: tuple) -> Optional["CommPlan"]:
    """Compile the exchange schedule for ``(op, layout)``, or None when
    the geometry is out of scope (rank > 2, missing or non-uniform
    borders)."""
    if layout.rank not in (1, 2):
        return None
    widths = set(layout.borders)
    if len(widths) != 1:
        return None
    pad = widths.pop()
    if pad < 1:
        return None
    return CommPlan(op, array_id, layout, pad, epoch, processors)


class CommPlan:
    """The compiled halo-exchange schedule for one ``(op, array)`` at one
    ``(epoch, processors)`` membership."""

    __slots__ = ("op", "array_id", "layout", "pad", "depth", "epoch",
                 "processors", "stages", "edges")

    def __init__(self, op: str, array_id: Any, layout: Any, pad: int,
                 epoch: int, processors: tuple) -> None:
        self.op = op
        self.array_id = array_id
        self.layout = layout
        self.pad = pad
        # A depth-k exchange ships k interior cells per side, so the
        # usable depth is clipped by the thinnest local dimension.
        self.depth = min(pad, min(layout.local_dims))
        self.epoch = epoch
        self.processors = tuple(processors)
        self.stages = 2 if layout.rank == 2 else 1
        names = _SIDE_NAMES[layout.rank]
        self.edges: List[PlanEdge] = []
        for dest in range(layout.num_sections):
            for (axis, direction), src in sorted(
                layout.grid_neighbors(dest).items()
            ):
                self.edges.append(
                    PlanEdge(
                        axis=axis,
                        direction=direction,
                        side=names[(axis, direction)],
                        stage=axis if layout.rank == 2 else 0,
                        src_section=src,
                        dest_section=dest,
                    )
                )

    # -- geometry ------------------------------------------------------------

    def _slices(self, edge: PlanEdge, k: int) -> tuple:
        """(src_slices, dest_slices) for ``edge`` at exchange depth ``k``.

        Stage 0 strips span interior columns only; stage 1 strips span
        the full row range ``[pad-k, pad+h+k)`` — including the stage-0
        halo rows — which is what relays corner data without diagonal
        messages.
        """
        d = self.pad
        if self.layout.rank == 1:
            (length,) = self.layout.local_dims
            if edge.direction == "low":  # from the west neighbour
                return ((slice(d + length - k, d + length),),
                        (slice(d - k, d),))
            return ((slice(d, d + k),),
                    (slice(d + length, d + length + k),))
        h, w = self.layout.local_dims
        if edge.axis == 0:
            cols = slice(d, d + w)
            if edge.direction == "low":  # from the north neighbour
                return ((slice(d + h - k, d + h), cols),
                        (slice(d - k, d), cols))
            return ((slice(d, d + k), cols),
                    (slice(d + h, d + h + k), cols))
        rows = slice(d - k, d + h + k)
        if edge.direction == "low":  # from the west neighbour
            return ((rows, slice(d + w - k, d + w)),
                    (rows, slice(d - k, d)))
        return ((rows, slice(d, d + k)),
                (rows, slice(d + w, d + w + k)))

    def transfers(self, k: int, section: Optional[int] = None,
                  role: Optional[str] = None,
                  stage: Optional[int] = None) -> List[Transfer]:
        """The concrete transfer list at depth ``k``, optionally filtered
        to one section's sends (``role="send"``) or receives
        (``role="recv"``) and/or one stage."""
        if not 1 <= k <= self.depth:
            raise ValueError(
                f"exchange depth {k} outside [1, {self.depth}] for plan "
                f"{self.op!r} on {self.array_id}"
            )
        out = []
        for edge in self.edges:
            if stage is not None and edge.stage != stage:
                continue
            if section is not None:
                if role == "send" and edge.src_section != section:
                    continue
                if role == "recv" and edge.dest_section != section:
                    continue
                if role is None and section not in (edge.src_section,
                                                    edge.dest_section):
                    continue
            src, dest = self._slices(edge, k)
            out.append(Transfer(edge, k, src, dest))
        return out

    def begin(self, registry: "PlanRegistry", record: Any, full: Any,
              section: int, k: int, token: tuple,
              source: int) -> "HaloExchange":
        """Open one exchange phase for ``section`` at depth ``k``."""
        return HaloExchange(registry, self, record, full, section, k,
                            token, source)

    def describe(self) -> dict:
        return {
            "op": self.op,
            "array": str(self.array_id.as_tuple()),
            "epoch": self.epoch,
            "depth": self.depth,
            "stages": self.stages,
            "edges": len(self.edges),
            "processors": self.processors,
        }


class HaloExchange:
    """One phase of planned halo traffic for one section.

    ``prefetch()`` posts the first-stage bulk sends and returns their
    ``done`` futures immediately — the strips are in flight while the
    caller computes interior work.  ``complete()`` settles the protocol:
    it secures acknowledgements for everything this copy sent (retrying
    dropped strips against the re-resolved owner, exactly the
    write-coalescer's retry discipline), claims the inbound stage-0
    strips, posts the orthogonal stage-1 strips that span the freshly
    filled halo rows, and claims those.  ``sides`` restricts *claiming*
    to the borders the kernel actually reads; protocol obligations
    (acknowledging sends, claiming stage-0 strips that feed stage-1
    sends) are always met.

    Deadlock-freedom: acknowledgements are defined by the *delivery*
    thread the moment a strip is fenced/stashed, never by the peer copy's
    progress — so securing outbound acks before blocking on inbound
    strips cannot cycle even when both directions of an edge drop.
    """

    def __init__(self, registry: "PlanRegistry", plan: CommPlan, record: Any,
                 full: Any, section: int, k: int, token: tuple,
                 source: int) -> None:
        if not 1 <= k <= plan.depth:
            raise ValueError(f"exchange depth {k} outside [1, {plan.depth}]")
        self.registry = registry
        self.plan = plan
        self.record = record
        self.full = full
        self.section = section
        self.k = k
        self.token = token
        self.source = source
        self.futures: List[DefVar] = []
        self._pending: List[HaloStrip] = []
        self._filled: set = set()
        self._claimed_strips = 0
        self._claimed_bytes = 0
        self._prefetched = False
        self._completed = False

    def receives(self, side: str) -> bool:
        """Does this section receive a strip on ``side`` (i.e. does it
        have a neighbour there)?"""
        return any(
            e.dest_section == self.section and e.side == side
            for e in self.plan.edges
        )

    # -- protocol ------------------------------------------------------------

    def prefetch(self) -> List[DefVar]:
        """Issue the first-stage halo sends; returns their ack futures.

        Flushes the write-behind coalescer for this array first, so a
        strip carries every acknowledged element write (the plan flush
        point, docs/performance.md).
        """
        if self._prefetched:
            return self.futures
        self.registry.flush_for(self.plan.array_id)
        self._post_stage(0)
        self._prefetched = True
        return self.futures

    def complete(self, sides: Optional[Iterable[str]] = None) -> None:
        """Block until the halo cells on ``sides`` (default: all) hold
        this phase's data; settles all send acknowledgements."""
        if self._completed:
            return
        if not self._prefetched:
            self.prefetch()
        wanted = None if sides is None else set(sides)
        registry = self.registry
        with obs_span(
            registry.machine,
            "perf:halo",
            array=str(self.plan.array_id.as_tuple()),
            section=self.section,
            depth=self.k,
            phase=str(self.token),
        ) as span:
            self._secure_pending()
            # Stage-0 strips must all land before stage-1 sends read the
            # halo rows they span — regardless of the ``sides`` filter.
            self._claim_stage(0, None if self.plan.stages > 1 else wanted)
            if self.plan.stages > 1:
                self._post_stage(1)
                self._secure_pending()
                self._claim_stage(1, wanted)
            span.annotate(strips=self._claimed_strips)
        registry.exchanges += 1
        observer = getattr(registry.machine, "_observer", None)
        if observer is not None:
            observer.halo_exchange(self._claimed_strips, self._claimed_bytes)
        self._completed = True

    # -- internals -----------------------------------------------------------

    def _post_stage(self, stage: int) -> None:
        for transfer in self.plan.transfers(
            self.k, section=self.section, role="send", stage=stage
        ):
            data = self.full[transfer.src_slices].copy()
            strip = HaloStrip(
                self.plan.array_id,
                transfer.edge.src_section,
                transfer.edge.dest_section,
                transfer.edge.side,
                stage,
                self.token,
                self.record.epoch,
                transfer.dest_slices,
                data,
                DefVar(f"halo_ack[{transfer.edge.dest_section}]"),
            )
            self._route(strip)
            self._pending.append(strip)
            self.futures.append(strip.done)

    def _owner_of(self, dest_section: int) -> Optional[int]:
        state = self.registry.manager.durability_state(self.plan.array_id)
        procs = (state.processors if state is not None
                 else self.plan.processors)
        if dest_section >= len(procs):
            return None
        return procs[dest_section]

    def _route(self, strip: HaloStrip) -> None:
        registry = self.registry
        machine = registry.machine
        dest = self._owner_of(strip.dest_section)
        if dest is None or machine.is_failed(dest):
            raise ProcessorFailedError(
                f"halo destination section {strip.dest_section} of "
                f"{strip.array_id} has no live owner"
            )
        if dest == self.source:
            registry.apply_strip(dest, strip)
            registry.inline_strips += 1
        else:
            machine.route(
                Message(
                    source=self.source,
                    dest=dest,
                    payload=strip,
                    tag=(HALO_BULK_KIND, strip.array_id.as_tuple()),
                    kind=HALO_BULK_KIND,
                )
            )
            registry.routed_strips += 1
        registry.strips_sent += 1

    def _reship(self, strip: HaloStrip) -> HaloStrip:
        fresh = HaloStrip(
            strip.array_id, strip.src_section, strip.dest_section,
            strip.side, strip.stage, strip.token, strip.epoch,
            strip.dest_slices, strip.data,
            DefVar(f"halo_ack[{strip.dest_section}]"),
        )
        self._route(fresh)
        return fresh

    def _secure_pending(self) -> None:
        registry = self.registry
        for strip in self._pending:
            current = strip
            for _attempt in range(registry.max_retries + 1):
                try:
                    outcome = current.done.read(
                        timeout=registry.retry_timeout
                    )
                except TimeoutError:
                    # Dropped or delayed in transit: reship the same
                    # (token, stage, side) unit — the receiver's
                    # single-assignment rendezvous deduplicates a late
                    # original.
                    registry.retries += 1
                    current = self._reship(current)
                    continue
                if outcome == "ok":
                    break
                if outcome == "stale":
                    raise StalePlanError(
                        f"halo strip {current!r} fenced as STALE_EPOCH: "
                        "plan predates a membership rewrite"
                    )
                # "not_found": the owner moved mid-phase (migration
                # between resolve and delivery) — chase the section to
                # its re-resolved home.
                registry.retries += 1
                current = self._reship(current)
            else:
                raise TimeoutError(
                    f"halo strip to section {strip.dest_section} of "
                    f"{strip.array_id} unacknowledged after "
                    f"{registry.max_retries + 1} attempts"
                )
        self._pending = []

    def _claim_stage(self, stage: int, sides: Optional[set]) -> None:
        registry = self.registry
        machine = registry.machine
        for transfer in self.plan.transfers(
            self.k, section=self.section, role="recv", stage=stage
        ):
            side = transfer.edge.side
            if sides is not None and side not in sides:
                continue
            if (stage, side) in self._filled:
                continue
            key = (self.plan.array_id.as_tuple(), transfer.edge.src_section,
                   self.section, side, stage, self.token)
            strip = registry.await_strip(
                key, timeout=machine.default_recv_timeout
            )
            with self.record.lock:
                self.full[strip.dest_slices] = strip.data
            self._filled.add((stage, side))
            self._claimed_strips += 1
            self._claimed_bytes += int(getattr(strip.data, "nbytes", 0))
            registry.strips_claimed += 1


class PlanRegistry:
    """Machine-wide plan cache + rendezvous state for halo exchanges.

    Plans are cached per ``(op, array)`` and revalidated against the
    durability state's ``(epoch, processors)`` on every fetch; recovery,
    migration, rebalance, and rejoin all bump the epoch, so their effect
    on cached plans is automatic invalidation with no extra locking.
    """

    def __init__(self, machine: Any, manager: Any) -> None:
        self.machine = machine
        self.manager = manager
        self.enabled = True
        self.max_retries = 3
        self.retry_timeout = 5.0
        self.max_rendezvous = 4096
        self._lock = threading.Lock()
        self._plans: Dict[tuple, CommPlan] = {}
        self._rendezvous: Dict[tuple, DefVar] = {}
        self.compiled = 0
        self.hits = 0
        self.invalidations = 0
        self.exchanges = 0
        self.strips_sent = 0
        self.strips_claimed = 0
        self.inline_strips = 0
        self.routed_strips = 0
        self.duplicate_strips = 0
        self.stale_strips = 0
        self.not_found_strips = 0
        self.retries = 0

    # -- plan cache ----------------------------------------------------------

    def _observe(self, event: str) -> None:
        observer = getattr(self.machine, "_observer", None)
        if observer is not None:
            observer.comm_plan(event)

    def _layout_for(self, array_id: Any, state: Any) -> Any:
        for proc in state.processors:
            record = self.manager._lookup(
                self.machine.processor(proc), array_id
            )
            if record is not None:
                return record.layout
        return None

    def halo_plan(self, op: str, array_id: Any) -> Optional[CommPlan]:
        """The cached plan for ``(op, array_id)``, recompiled when the
        durability epoch or membership moved since compile time."""
        if not self.enabled:
            return None
        state = self.manager.durability_state(array_id)
        if state is None:
            return None
        procs = tuple(state.processors)
        # Resolve the live layout up front: `verify_array` can reallocate
        # sections with different border depths *without* bumping the
        # epoch, so geometry is part of plan validity alongside
        # (epoch, membership).
        layout = self._layout_for(array_id, state)
        if layout is None:
            return None
        key = (op, array_id.as_tuple())
        invalidated = False
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                if (cached.epoch == state.epoch
                        and cached.processors == procs
                        and cached.layout.borders == layout.borders
                        and cached.layout.local_dims
                        == layout.local_dims):
                    self.hits += 1
                else:
                    del self._plans[key]
                    self.invalidations += 1
                    invalidated = True
                    cached = None
        if cached is not None:
            self._observe("hit")
            return cached
        if invalidated:
            self._observe("invalidated")
        plan = compile_halo_plan(op, array_id, layout, state.epoch, procs)
        if plan is None:
            return None
        with self._lock:
            self._plans[key] = plan
            self.compiled += 1
        self._observe("compiled")
        return plan

    def drop_array(self, array_id: Any) -> None:
        aid = array_id.as_tuple()
        with self._lock:
            for key in [k for k in self._plans if k[1] == aid]:
                del self._plans[key]
            for key in [k for k in self._rendezvous if k[0] == aid]:
                del self._rendezvous[key]

    def flush_for(self, array_id: Any) -> None:
        perf = getattr(self.machine, "_perf", None)
        if perf is not None:
            perf.coalescer.flush(array_id)

    # -- rendezvous ----------------------------------------------------------

    def _rendezvous_var(self, key: tuple) -> DefVar:
        with self._lock:
            var = self._rendezvous.get(key)
            if var is None:
                if len(self._rendezvous) >= self.max_rendezvous:
                    # Evict the oldest entries — strips left unclaimed by
                    # aborted calls or skipped sides (insertion order is
                    # arrival order).
                    for old in list(self._rendezvous)[
                        : self.max_rendezvous // 4
                    ]:
                        del self._rendezvous[old]
                var = DefVar(f"halo{key}")
                self._rendezvous[key] = var
        return var

    def await_strip(self, key: tuple, timeout: Optional[float]) -> HaloStrip:
        var = self._rendezvous_var(key)
        outcome = var.read(timeout=timeout)
        with self._lock:
            self._rendezvous.pop(key, None)
        verdict, payload = outcome
        if verdict != "ok":
            raise StalePlanError(
                f"halo rendezvous {key} fenced as STALE_EPOCH "
                f"(sender epoch {payload})"
            )
        return payload

    # -- delivery (the halo_bulk kind handler) -------------------------------

    def deliver(self, message: Message) -> None:
        """Final delivery of one ``kind="halo_bulk"`` message."""
        self.apply_strip(message.dest, message.payload)

    def apply_strip(self, dest: int, strip: HaloStrip) -> None:
        """Fence -> dedup -> stash one strip arriving at ``dest``.

        Never writes section storage: the strip parks in its phase's
        rendezvous variable and the receiving copy's own thread copies it
        into the border cells inside ``HaloExchange.complete()``, so late
        or duplicated deliveries cannot race a kernel mid-sweep.
        """
        manager = self.manager
        node = self.machine.processor(dest)
        record = manager._lookup(node, strip.array_id)
        state = manager.durability_state(strip.array_id)
        if (record is None or record.section is None or state is None
                or strip.dest_section >= len(state.processors)
                or state.processors[strip.dest_section] != dest):
            # Not the authoritative owner (the section migrated away, or
            # never lived here): refuse without consuming the rendezvous,
            # so the sender's retry chases the re-resolved owner.
            self.not_found_strips += 1
            define_once(strip.done, "not_found")
            return
        if strip.epoch < state.epoch or record.epoch < state.epoch:
            # The STALE_EPOCH fence (docs/fault_model.md §9): the sender
            # compiled against a membership that has since been rewritten
            # — or this record itself was left behind by one.  Poison the
            # phase's rendezvous so a claiming receiver aborts with
            # StalePlanError instead of filling a border with stale data.
            self.stale_strips += 1
            manager._refuse_stale(strip.array_id, None)
            define_once(self._rendezvous_var(strip.key()),
                        ("stale", strip.epoch))
            define_once(strip.done, "stale")
            return
        var = self._rendezvous_var(strip.key())
        try:
            var.define(("ok", strip))
        except SingleAssignmentError:
            # Duplicate delivery (fault injection, or a retry racing the
            # delayed original): the first copy already parked here.
            self.duplicate_strips += 1
        define_once(strip.done, "ok")

    # -- introspection -------------------------------------------------------

    def diagnostics(self) -> dict:
        with self._lock:
            plans = len(self._plans)
            pending = len(self._rendezvous)
        return {
            "enabled": self.enabled,
            "plans": plans,
            "compiled": self.compiled,
            "hits": self.hits,
            "invalidations": self.invalidations,
            "exchanges": self.exchanges,
            "strips_sent": self.strips_sent,
            "strips_claimed": self.strips_claimed,
            "inline_strips": self.inline_strips,
            "routed_strips": self.routed_strips,
            "duplicate_strips": self.duplicate_strips,
            "stale_strips": self.stale_strips,
            "not_found_strips": self.not_found_strips,
            "retries": self.retries,
            "pending_rendezvous": pending,
        }
