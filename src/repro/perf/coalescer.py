"""The write-behind coalescing buffer (hot-path batching layer).

The thesis' array manager services every element write as one synchronous
server hop (§5.1.1) — correct, and expensive: a 64-element initialisation
loop costs 64 routed messages plus 64 replica updates per backup.  The
:class:`WriteCoalescer` turns that traffic pattern into a *write-behind
buffer*: element writes are validated eagerly, acknowledged immediately,
and queued per ``(array, section)``; a queue drains as **one** fused
``kind="array_batch"`` message that the owner applies atomically under its
record lock (one lock acquisition, one replica update per backup, one
message — per batch instead of per write).

Sequential equivalence (§3.3) is preserved by *flush points*: any
operation that could observe a queued write forces the queue out first —

* reads of a dirty section (``read_element``/``read_region``/local reads),
* region/section writes (ordering barriers between granularities),
* barriers and collectives (:mod:`repro.spmd.collectives`),
* checkpoint/restore/verify (:mod:`repro.arrays.manager`),
* distributed-call boundaries (:func:`repro.calls.do_all.do_all`),
* size/byte thresholds (``flush_ops``/``flush_bytes``).

A program that writes then reads on one logical thread of control
therefore always reads its own writes; concurrent writers were never
ordered in the first place (§3.2.1.5 leaves racing element writes
indeterminate), so batching them does not weaken the model.

Failure semantics: a batch is retried **as one unit**.  Every attempt
ships the same per-queue sequence number, so a duplicated or delayed
original (fault injection, :mod:`repro.faults`) can never re-apply — the
owner tracks the last applied sequence per queue and drops stale or
repeated batches.  A batch whose owner dies after acceptance is the
write-behind loss window: the coalescer re-resolves the owner from the
durability membership (recovery may have adopted the section onto a
spare) and re-ships; if no owner survives the batch is counted in
``lost_batches`` and surfaced through ``Machine.diagnostics()["perf"]``.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.obs.spans import span as obs_span
from repro.pcn.defvar import DefVar
from repro.status import ProcessorFailedError, SingleAssignmentError
from repro.vp.message import Message

ARRAY_BATCH_KIND = "array_batch"


def define_once(var: Optional[DefVar], value: Any) -> None:
    """Define ``var`` unless a duplicate delivery already did."""
    if var is None:
        return
    try:
        var.define(value)
    except SingleAssignmentError:
        pass


def _op_nbytes(value: Any) -> int:
    nbytes = getattr(value, "nbytes", None)
    return int(nbytes) if nbytes is not None else 8


class ArrayBatch:
    """The payload of one ``array_batch`` message.

    ``ops`` is an ordered list of ``(op, target, value)`` sub-writes —
    ``op`` is ``"element"`` (target = local indices) or ``"region"``
    (target = interior slices) — applied atomically under the owner's
    record lock.  ``seq`` is the per-queue sequence number used for
    exactly-once application under retry/duplication; ``done`` is the
    completion variable the flushing thread waits on.
    """

    __slots__ = ("array_id", "section", "seq", "ops", "done")

    def __init__(
        self,
        array_id: Any,
        section: int,
        seq: int,
        ops: list,
        done: Optional[DefVar],
    ) -> None:
        self.array_id = array_id
        self.section = section
        self.seq = seq
        self.ops = ops
        self.done = done

    @property
    def nbytes(self) -> int:
        return sum(_op_nbytes(value) for _op, _t, value in self.ops) + 16

    def __repr__(self) -> str:
        return (
            f"<ArrayBatch {self.array_id} section={self.section} "
            f"seq={self.seq} ops={len(self.ops)}>"
        )


class _Pending:
    """One queue of unflushed writes for an ``(array, section)`` key."""

    __slots__ = ("ops", "nbytes", "source", "owner")

    def __init__(self, source: int, owner: int) -> None:
        self.ops: list = []
        self.nbytes = 0
        self.source = source
        self.owner = owner


class WriteCoalescer:
    """Machine-wide write-behind buffer for distributed-array writes."""

    def __init__(
        self,
        machine: Any,
        manager: Any,
        flush_ops: int = 32,
        flush_bytes: int = 1 << 16,
        max_retries: int = 3,
        retry_timeout: float = 5.0,
    ) -> None:
        self.machine = machine
        self.manager = manager
        self.enabled = True
        self.flush_ops = flush_ops
        self.flush_bytes = flush_bytes
        self.max_retries = max_retries
        self.retry_timeout = retry_timeout
        self._lock = threading.Lock()
        self._pending: dict[tuple, _Pending] = {}
        # Per-key flush serialisation: batch N must complete (or be given
        # up on) before batch N+1 drains, so reordered application of two
        # overlapping batches cannot resurrect older data.
        self._flush_locks: dict[tuple, threading.Lock] = {}
        self._next_seq: dict[tuple, int] = {}
        self._applied_seq: dict[tuple, int] = {}
        # Counters surfaced in Machine.diagnostics()["perf"].
        self.enqueued_writes = 0
        self.flushes = 0
        self.flushed_ops = 0
        self.inline_batches = 0
        self.routed_batches = 0
        self.retries = 0
        self.lost_batches = 0

    # -- enqueue ---------------------------------------------------------------

    def enqueue(
        self,
        array_id: Any,
        section: int,
        owner: int,
        op: str,
        target: Any,
        value: Any,
        source: int,
    ) -> None:
        """Queue one validated write; flush on threshold crossing."""
        key = (array_id, section)
        with self._lock:
            pending = self._pending.get(key)
            if pending is None:
                pending = self._pending[key] = _Pending(source, owner)
            pending.ops.append((op, target, value))
            pending.nbytes += _op_nbytes(value)
            self.enqueued_writes += 1
            over = (
                len(pending.ops) >= self.flush_ops
                or pending.nbytes >= self.flush_bytes
            )
        if over:
            self._flush_key(key, reason="threshold")

    # -- flush -----------------------------------------------------------------

    def flush(
        self, array_id: Any = None, section: Optional[int] = None
    ) -> int:
        """Drain pending writes (all, one array's, or one section's).

        Returns the number of writes flushed.  Cheap when nothing is
        pending — every flush point calls this unconditionally.
        """
        with self._lock:
            if not self._pending:
                return 0
            keys = [
                key
                for key in self._pending
                if (array_id is None or key[0] == array_id)
                and (section is None or key[1] == section)
            ]
        total = 0
        for key in keys:
            total += self._flush_key(key, reason="forced")
        return total

    def discard(self, array_id: Any) -> int:
        """Drop pending writes for a freed array (they can never land)."""
        with self._lock:
            keys = [key for key in self._pending if key[0] == array_id]
            dropped = sum(len(self._pending.pop(k).ops) for k in keys)
        return dropped

    def pending_ops(self, array_id: Any = None) -> int:
        with self._lock:
            return sum(
                len(p.ops)
                for key, p in self._pending.items()
                if array_id is None or key[0] == array_id
            )

    # -- exactly-once bookkeeping ---------------------------------------------

    def should_apply(self, key: tuple, seq: int) -> bool:
        """Owner-side dedup: False for a repeated/late batch delivery."""
        with self._lock:
            if seq <= self._applied_seq.get(key, 0):
                return False
            self._applied_seq[key] = seq
            return True

    # -- internals -------------------------------------------------------------

    def _flush_lock(self, key: tuple) -> threading.Lock:
        with self._lock:
            lock = self._flush_locks.get(key)
            if lock is None:
                lock = self._flush_locks[key] = threading.Lock()
            return lock

    def _flush_key(self, key: tuple, reason: str) -> int:
        with self._flush_lock(key):
            with self._lock:
                pending = self._pending.pop(key, None)
                if pending is None:
                    return 0
                seq = self._next_seq.get(key, 0) + 1
                self._next_seq[key] = seq
            self._ship(key, seq, pending, reason)
            return len(pending.ops)

    def _resolve_owner(self, key: tuple, fallback: int) -> int:
        """Current owner of the section (recovery may have remapped it)."""
        array_id, section = key
        state = self.manager.durability_state(array_id)
        if state is not None:
            with state.lock:
                processors = state.processors
            if 0 <= section < len(processors):
                return int(processors[section])
        return fallback

    def _ship(self, key: tuple, seq: int, pending: _Pending, reason: str) -> None:
        """Deliver one batch, retrying it as a single unit on timeout."""
        machine = self.machine
        array_id, section = key
        source = pending.source
        ops = pending.ops
        with obs_span(
            machine,
            "perf:flush",
            array=str(array_id.as_tuple()),
            section=section,
            ops=len(ops),
            reason=reason,
        ) as span:
            for attempt in range(self.max_retries + 1):
                owner = self._resolve_owner(key, pending.owner)
                if machine.is_failed(owner):
                    self.lost_batches += 1
                    span.annotate(outcome="lost")
                    return
                if machine.is_failed(source):
                    # Orphaned requester: originate the batch at the owner.
                    source = owner
                done = DefVar(f"array_batch[{seq}]@{owner}")
                batch = ArrayBatch(array_id, section, seq, ops, done)
                if source == owner:
                    # Same-node: apply directly, zero messages — matching
                    # the local-server semantics of the per-write path.
                    self.manager._apply_batch(machine.processor(owner), batch)
                    self.inline_batches += 1
                else:
                    try:
                        machine.route(
                            Message(
                                source=source,
                                dest=owner,
                                payload=batch,
                                tag=("array_batch", array_id.as_tuple()),
                                kind=ARRAY_BATCH_KIND,
                            )
                        )
                        self.routed_batches += 1
                    except ProcessorFailedError:
                        self.retries += 1
                        continue
                try:
                    outcome = done.read(timeout=self.retry_timeout)
                except TimeoutError:
                    # The batch was dropped or delayed in transit: retry
                    # the whole unit under the same sequence number (the
                    # owner deduplicates if the original shows up late).
                    self.retries += 1
                    continue
                if outcome in ("not_found", "stale"):
                    # "not_found": the resolved owner no longer holds the
                    # section — a migration landed between resolve and
                    # apply.  "stale": the owner held the section but its
                    # fencing epoch lagged the durability state — it was
                    # on the losing side of a partition or mid-handoff.
                    # Either way no sequence number was consumed, so the
                    # next attempt re-resolves the owner from the
                    # durability membership and chases the section to
                    # its authoritative home instead of silently losing
                    # the batch.
                    self.retries += 1
                    continue
                self.flushes += 1
                self.flushed_ops += len(ops)
                if attempt:
                    span.annotate(retries=attempt)
                observer = getattr(machine, "_observer", None)
                if observer is not None:
                    observer.perf_flush(len(ops), routed=source != owner)
                return
            self.lost_batches += 1
            span.annotate(outcome="lost")

    def diagnostics(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "pending_writes": sum(
                    len(p.ops) for p in self._pending.values()
                ),
                "enqueued_writes": self.enqueued_writes,
                "flushes": self.flushes,
                "flushed_ops": self.flushed_ops,
                "inline_batches": self.inline_batches,
                "routed_batches": self.routed_batches,
                "retries": self.retries,
                "lost_batches": self.lost_batches,
            }
