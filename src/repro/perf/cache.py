"""The epoch-validated read cache for remote sections.

Element reads of a remote section cost one server hop each (§5.1.1).  The
:class:`SectionCache` amortises them: on a miss the requester fetches the
owner's whole interior **once**, stamped with the array epoch and the
section's write version, and serves subsequent element reads of that
section locally while the stamp is still current.

Validation costs zero extra messages: the requester compares the cached
stamp against state it already holds machine-wide — the authoritative
array epoch (:class:`~repro.arrays.durability.DurabilityState`, bumped by
checkpoint, restore, and recovery) and the per-section write version
(:class:`SectionVersions`, bumped by every batch flush and direct write).
A write anywhere therefore invalidates by *stamp mismatch* rather than by
broadcast; the stamp piggybacks on the ``read_section_stamped`` reply.

The cache is **opt-in** (``machine._perf.cache.enabled = True`` or
``am_user.set_read_cache``): the per-element request counters of the
thesis' cost model (FIG-3.9) remain exact by default.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Optional, Tuple


class SectionVersions:
    """Per-``(array, section)`` monotonic write counters (machine-wide)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._versions: dict[tuple, int] = {}

    def bump(self, array_id: Any, section: int) -> int:
        with self._lock:
            value = self._versions.get((array_id, section), 0) + 1
            self._versions[(array_id, section)] = value
            return value

    def get(self, array_id: Any, section: int) -> int:
        with self._lock:
            return self._versions.get((array_id, section), 0)

    def drop_array(self, array_id: Any) -> None:
        with self._lock:
            for key in [k for k in self._versions if k[0] == array_id]:
                del self._versions[key]


class SectionCache:
    """LRU cache of remote section interiors keyed ``(array, section)``,
    each entry validated by its ``(epoch, version)`` stamp."""

    def __init__(self, capacity: int = 128) -> None:
        self.enabled = False
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, Tuple[int, int, Any]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(
        self, array_id: Any, section: int, epoch: int, version: int
    ) -> Optional[Any]:
        """The cached section data, or None on a miss or a stale stamp."""
        key = (array_id, section)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            cached_epoch, cached_version, data = entry
            if cached_epoch != epoch or cached_version != version:
                # Epoch bump (checkpoint/restore/recovery) or a newer
                # write: the entry is unusable, drop it.
                del self._entries[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return data

    def store(
        self, array_id: Any, section: int, epoch: int, version: int, data: Any
    ) -> None:
        key = (array_id, section)
        with self._lock:
            self._entries[key] = (epoch, version, data)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def drop_array(self, array_id: Any) -> None:
        with self._lock:
            for key in [k for k in self._entries if k[0] == array_id]:
                del self._entries[key]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def diagnostics(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }
