"""Status codes and exception hierarchy.

The paper's library procedures (§4.1.2) report success or failure through an
integer ``Status`` out-parameter.  The paper-faithful ``am_user`` layer keeps
that convention; the pythonic ``core`` layer converts non-OK statuses into
the exceptions defined here.
"""

from __future__ import annotations

import enum
from typing import Optional


class Status(enum.IntEnum):
    """Status values from §4.1.2 of the thesis."""

    OK = 0
    INVALID = 1
    NOT_FOUND = 2
    STALE_EPOCH = 3
    ERROR = 99


STATUS_OK = Status.OK
STATUS_INVALID = Status.INVALID
STATUS_NOT_FOUND = Status.NOT_FOUND
STATUS_STALE_EPOCH = Status.STALE_EPOCH
STATUS_ERROR = Status.ERROR


class ReproError(Exception):
    """Base class for all errors raised by the pythonic layers."""

    status: Status = Status.ERROR


class InvalidParameterError(ReproError):
    """A library procedure was called with an invalid parameter."""

    status = Status.INVALID


class ArrayNotFoundError(ReproError):
    """A distributed-array ID does not reference a live array."""

    status = Status.NOT_FOUND


class SystemError_(ReproError):
    """Internal failure of the runtime (paper's STATUS_ERROR)."""

    status = Status.ERROR


class StaleEpochError(ReproError):
    """A write, adopt, or batch apply carried (or landed on a record at)
    an epoch older than the array's authoritative epoch — the fencing
    token refused it.  This is how a stale owner stranded on the minority
    side of a network partition is prevented from committing after heal:
    its record's epoch was left behind by the recovery that reassigned
    its sections, so every commit it attempts is identifiable and
    refusable (see docs/fault_model.md §9)."""

    status = Status.STALE_EPOCH


class SingleAssignmentError(ReproError):
    """A definitional variable was defined more than once (§3.1.1.2)."""

    status = Status.INVALID


class SharedVariableConflictError(ReproError):
    """Two concurrent processes made conflicting writes to a shared
    multiple-assignment variable (§3.1.1.4)."""

    status = Status.INVALID


class DeadlockError(ReproError):
    """The runtime detected that every live process is suspended.

    Raised by the fault subsystem's watchdog with the observed wait-graph
    attached (a list of :class:`repro.faults.watchdog.WaitEdge`), so the
    circular dependency can be reported rather than merely suspected.
    """

    status = Status.ERROR

    def __init__(self, message: str = "", wait_graph: Optional[list] = None):
        super().__init__(message)
        self.wait_graph: list = wait_graph or []


class ProcessorFailedError(ReproError):
    """A virtual processor died (§4.1.2 failure-as-value discipline).

    Raised immediately by any receive blocked on a dead processor's
    mailbox, by sends addressed to a dead processor (under the ``"raise"``
    policy), and by attempts to place processes on a dead processor.
    """

    status = Status.ERROR

    def __init__(self, message: str = "", processor: Optional[int] = None):
        super().__init__(message)
        self.processor = processor


_EXCEPTION_FOR_STATUS = {
    Status.INVALID: InvalidParameterError,
    Status.NOT_FOUND: ArrayNotFoundError,
    Status.STALE_EPOCH: StaleEpochError,
    Status.ERROR: SystemError_,
}


def check_status(status: int, context: str = "") -> None:
    """Raise the exception matching ``status`` if it is not ``OK``.

    User programs may report arbitrary integer statuses (§4.3.1); any
    nonzero value outside the §4.1.2 codes raises :class:`SystemError_`.
    The raised exception's ``status`` attribute preserves the original
    value (the enum member for §4.1.2 codes, the raw integer otherwise),
    and the raw value always appears in the message.
    """
    raw = int(status)
    try:
        st: Optional[Status] = Status(raw)
    except ValueError:
        st = None
    if st is Status.OK:
        return
    cls = _EXCEPTION_FOR_STATUS.get(st, SystemError_)
    label = st.name if st is not None else repr(raw)
    exc = cls(
        (context or f"operation failed with status {label}")
        + f" (status={raw})"
    )
    exc.status = st if st is not None else raw
    raise exc
