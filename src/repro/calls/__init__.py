"""Distributed calls: invoking SPMD data-parallel programs from the
task-parallel level (§3.3, §4.3, §5.2, §F).

A distributed call executes an SPMD program concurrently on each processor
of a group and suspends the caller until every copy terminates — making the
call semantically equivalent to a sequential subprogram call (§2.1).  The
implementation mirrors the thesis' structure: a ``do_all`` primitive
(§5.2.1), a generated two-level **wrapper** program that marshals
parameters and local sections (§5.2.2, §F.3-§F.4), and a generated
**combine** program that pairwise-merges per-copy status/reduction tuples
(§F.6).
"""

from repro.calls.params import (
    Index,
    Local,
    Reduce,
    StatusVar,
    normalize_parameters,
)
from repro.calls.do_all import do_all
from repro.calls.api import CallResult, distributed_call

__all__ = [
    "Index",
    "Local",
    "Reduce",
    "StatusVar",
    "normalize_parameters",
    "do_all",
    "CallResult",
    "distributed_call",
]
