"""Generated wrapper programs for distributed calls (§5.2.2, §F.3-§F.5).

The thesis' source-to-source transformation turns each
``am_user:distributed_call`` into a ``do_all`` over a generated *wrapper*
program.  The wrapper is two-level:

* the **first-level** wrapper extracts, from the bundled parameter tuple,
  any values needed to *declare* local variables (reduction lengths — §F.3:
  "the size of local reduction variables can depend on a global-constant
  parameter"), then calls the second level;
* the **second-level** wrapper (§F.4) unbundles the remaining parameters,
  obtains local sections with ``am_user:find_local``, declares the local
  status and reduction variables, calls the data-parallel program, and
  packs ``(local_status, local_reduce_1, ...)`` into the tuple the combine
  program merges.

We generate the same structure as closures.  Failure behaviour follows the
generated PCN exactly: a find_local failure or malformed parameter bundle
defines the status tuple as STATUS_INVALID without calling the program; a
program that raises yields STATUS_ERROR.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.arrays import am_user
from repro.arrays.local_section import dtype_for
from repro.obs.spans import span as obs_span
from repro.calls.params import (
    Constant,
    Index,
    Local,
    ParamSpec,
    Reduce,
    StatusVar,
)
from repro.pcn.defvar import DefVar
from repro.spmd.context import OutCell, SPMDContext
from repro.status import ProcessorFailedError, Status
from repro.vp.machine import Machine

_call_ids = itertools.count()


def next_call_group() -> tuple:
    """A machine-unique group id for one distributed call."""
    return ("dcall", next(_call_ids))


def build_wrapper(
    machine: Machine,
    program: Callable[..., Any],
    specs: Sequence[ParamSpec],
    processors: Sequence[int],
    group: Any,
) -> Callable[[int, Any, DefVar], None]:
    """Generate the wrapper program for one distributed call.

    The returned callable has the ``do_all`` program signature
    ``wrapper(index, parms, status_var)``.  ``parms`` carries the bundled
    constants/array IDs; per §F the reduction *lengths* travel in the bundle
    and are unpacked by the first level before local declarations happen.
    """
    procs = tuple(int(p) for p in processors)
    reduce_list = [s for s in specs if isinstance(s, Reduce)]
    n_reduce = len(reduce_list)

    def failure_tuple(status: Status) -> tuple:
        return (int(status),) + (None,) * n_reduce

    def wrapper_first_level(index: int, parms: Any, status_var: DefVar) -> None:
        # §F.3: pattern-match the bundle; malformed -> STATUS_INVALID.
        try:
            bundle, reduce_lengths = parms
        except (TypeError, ValueError):
            status_var.define(failure_tuple(Status.INVALID))
            return
        with obs_span(machine, "wrapper", index=index):
            wrapper_second_level(index, bundle, status_var, reduce_lengths)

    def wrapper_second_level(
        index: int,
        bundle: Sequence[Any],
        status_var: DefVar,
        reduce_lengths: Sequence[int],
    ) -> None:
        # §F.4: declare local variables now that lengths are known.
        if len(reduce_lengths) != n_reduce or len(bundle) != len(specs):
            status_var.define(failure_tuple(Status.INVALID))
            return
        status_cell: Optional[OutCell] = None
        reduce_buffers: list[np.ndarray] = []
        ctx = SPMDContext(machine, procs, index, group)

        new_parameters: list[Any] = []
        reduce_i = 0
        for spec, bundled in zip(specs, bundle):
            if isinstance(spec, Local):
                # §F.4: obtain the local section via am_user:find_local on
                # the executing processor; failure aborts the copy with
                # STATUS_INVALID (the generated "default -> _l1=[1]").
                section, st = am_user.find_local(
                    machine, spec.array_id, processor=procs[index]
                )
                if st is not Status.OK or section is None:
                    status_var.define(failure_tuple(Status.INVALID))
                    return
                new_parameters.append(section)
            elif isinstance(spec, Index):
                new_parameters.append(index)
            elif isinstance(spec, StatusVar):
                status_cell = OutCell("local_status")
                new_parameters.append(status_cell)
            elif isinstance(spec, Reduce):
                length = int(reduce_lengths[reduce_i])
                reduce_i += 1
                buf = np.zeros(length, dtype=dtype_for(
                    "double" if spec.type_name == "char" else spec.type_name
                ))
                reduce_buffers.append(buf)
                new_parameters.append(buf)
            else:
                assert isinstance(spec, Constant)
                new_parameters.append(bundled)

        try:
            program(ctx, *new_parameters)
        except ProcessorFailedError:
            # Machine-level failure (a VP died under this call): propagate
            # as an exception so supervision/failover layers can react,
            # but still define the status tuple so sibling copies folding
            # on it never hang.
            status_var.define(failure_tuple(Status.ERROR))
            raise
        except Exception:  # noqa: BLE001 - a failed copy poisons the call
            status_var.define(failure_tuple(Status.ERROR))
            return

        # §F.4 tail: pack local status + reductions into the result tuple.
        if status_cell is not None:
            if not status_cell.assigned:
                # §4.3.1 requires the program to assign status before
                # completing; not doing so is a program error.
                local_status = int(Status.ERROR)
            else:
                local_status = int(status_cell.value)
        else:
            local_status = int(Status.OK)
        result: list[Any] = [local_status]
        for spec, buf in zip(reduce_list, reduce_buffers):
            value = buf.copy()
            result.append(value[0].item() if spec.length == 1 else value)
        status_var.define(tuple(result))

    return wrapper_first_level


def bundle_parameters(
    specs: Sequence[ParamSpec],
) -> tuple[tuple, tuple]:
    """Build the ``parms`` value passed to ``do_all`` (§F.2/§F.5).

    Constants travel by value; Local specs travel as their array IDs;
    Index/Status/Reduce positions travel as placeholders (None).  Reduction
    lengths travel alongside so the first-level wrapper can declare buffers.
    """
    bundle: list[Any] = []
    lengths: list[int] = []
    for spec in specs:
        if isinstance(spec, Constant):
            bundle.append(spec.value)
        elif isinstance(spec, Local):
            bundle.append(spec.array_id)
        else:
            bundle.append(None)
            if isinstance(spec, Reduce):
                lengths.append(spec.length)
    return tuple(bundle), tuple(lengths)
