"""``am_user:distributed_call`` (§4.3.1).

Executes a data-parallel SPMD program once per processor of a group,
suspending the caller until all copies complete (Fig 3.2).  Parameters are
specified per §3.3.1.2 (see :mod:`repro.calls.params`); the postcondition
implemented here is the §4.3.1 specification:

* ``Local`` parameters arrive as each copy's local section (mutable,
  in/out);
* ``Index`` parameters carry the copy's position in the processors array;
* the per-copy ``status`` values are merged with the caller's combine
  program (default ``am_util:max``) into the call's Status;
* each ``Reduce`` parameter's per-copy values are merged pairwise with its
  own combine program and delivered to the caller.

The called program receives an :class:`~repro.spmd.context.SPMDContext` as
its leading argument — the Python analogue of the ambient message-passing
environment plus the relocatability contract of §3.5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.calls.combine import make_combine_program
from repro.calls.do_all import do_all
from repro.calls.params import (
    Reduce,
    normalize_parameters,
    reduce_specs,
    status_position,
)
from repro.calls.wrapper import build_wrapper, bundle_parameters, next_call_group
from repro.obs.spans import span as obs_span
from repro.pcn.defvar import DefVar
from repro.status import Status
from repro.vp.machine import Machine


@dataclass
class CallResult:
    """Outcome of a distributed call.

    ``attempts`` records the supervision history when the call ran under a
    :class:`~repro.faults.retry.RetryPolicy` (None for unsupervised calls);
    ``error`` carries the final attempt's exception when supervision was
    exhausted by machine-level failures rather than non-OK statuses.
    """

    status: Status
    reductions: list = field(default_factory=list)
    attempts: Optional[list] = None
    error: Optional[BaseException] = None

    def __iter__(self):
        yield self.status
        yield self.reductions


# Per-call serial for backoff-jitter decorrelation: each supervised call
# gets a distinct label, so calls sharing one RetryPolicy do not retry in
# lockstep (see RetryPolicy.delay).
_CALL_LABELS = itertools.count()


def distributed_call(
    machine: Machine,
    processors: Sequence[int],
    program: Callable[..., Any],
    parameters: Sequence[Any],
    combine: Optional[Any] = None,
    status_out: Optional[DefVar] = None,
    timeout: Optional[float] = None,
    retry: Optional[Any] = None,
    idempotent: bool = False,
    restore_arrays: Optional[Sequence[Any]] = None,
) -> CallResult:
    """Call ``program`` concurrently on every processor in ``processors``.

    Returns a :class:`CallResult`; also defines ``status_out`` (if given)
    and each ``Reduce`` spec's ``out`` definitional variable — both become
    defined only on completion of all copies (§4.3.1 postcondition), so PCN
    code can synchronise on them.

    ``combine`` merges per-copy status values when a ``status`` parameter
    is present; with no status parameter the call's Status is OK provided
    every wrapper completed cleanly (the wrapper reports find_local and
    program failures through the status slot regardless).

    ``retry`` supervises the call with a
    :class:`~repro.faults.retry.RetryPolicy`: non-OK statuses, timeouts,
    and VP deaths are mapped to ``Status.ERROR`` between attempts and the
    whole call is re-executed.  Because re-execution repeats side effects,
    the caller must declare the call ``idempotent``.  With supervision the
    final machine-level failure is returned as a ``Status.ERROR`` result
    (failure-as-value, §4.1.2) rather than raised.

    ``restore_arrays`` (supervised calls only) lists distributed arrays —
    handles exposing ``array_id`` or raw ``ArrayID``\\ s — that the program
    mutates.  Each is checkpointed before the first attempt; every retry
    restores the checkpoints first, so re-execution starts from the
    pre-attempt epoch instead of the torn state a failed attempt
    half-wrote (Chunks-and-Tasks re-execution over recoverable data,
    arXiv:1210.7427).
    """
    specs = normalize_parameters(parameters)
    procs = [int(p) for p in processors]
    if not procs:
        raise ValueError("distributed call over an empty processor group")
    if len(set(procs)) != len(procs):
        raise ValueError("processor group contains duplicates")
    for p in procs:
        machine.processor(p)  # validate range
    if retry is not None and not idempotent:
        raise ValueError(
            "retry supervision re-executes the program; the call must be "
            "declared idempotent=True"
        )
    if restore_arrays and retry is None:
        raise ValueError(
            "restore_arrays only applies to supervised calls (retry=...): "
            "restores happen between retry attempts"
        )
    if timeout is None and machine.default_recv_timeout is not None:
        # Inherit the machine's receive deadline as the call bound, with
        # margin: the copies' blocked receives fire at the deadline and
        # the wrapper still needs to fold their ERROR statuses — an equal
        # join bound would race them.
        timeout = machine.default_recv_timeout + 30.0

    reduces = reduce_specs(specs)
    if combine is not None and status_position(specs) is None:
        # §4.3.1 precondition: a combine program is only meaningful with a
        # status parameter.
        raise ValueError(
            "combine program supplied but no 'status' parameter in the call"
        )

    snapshots: list[tuple[Any, Any]] = []
    if retry is not None and restore_arrays:
        from repro.arrays import am_user

        for array in restore_arrays:
            array_id = getattr(array, "array_id", array)
            snapshot, snap_status = am_user.checkpoint_array(machine, array_id)
            if snap_status is not Status.OK:
                raise ValueError(
                    f"cannot checkpoint {array_id} before supervised call: "
                    f"{snap_status.name}"
                )
            snapshots.append((array_id, snapshot))
    attempt_counter = itertools.count()

    def attempt() -> CallResult:
        # Retries first roll every restore_arrays target back to its
        # pre-attempt checkpoint, so re-execution never observes a torn
        # write from the failed attempt.
        if next(attempt_counter) > 0 and snapshots:
            from repro.arrays import am_user

            for array_id, snapshot in snapshots:
                restore_status = am_user.restore_array(
                    machine, array_id, snapshot
                )
                if restore_status is not Status.OK:
                    return CallResult(
                        status=Status.ERROR,
                        reductions=[],
                        error=RuntimeError(
                            f"restore of {array_id} before retry failed: "
                            f"{restore_status.name}"
                        ),
                    )
        # A fresh call group per attempt: stale messages from a failed
        # attempt can never be intercepted by the re-execution (§3.4.1).
        group = next_call_group()
        wrapper = build_wrapper(machine, program, specs, procs, group)
        combiner = make_combine_program(combine, [r.combine for r in reduces])
        parms = bundle_parameters(specs)

        with obs_span(machine, "attempt", group=str(group)):
            folded = do_all(
                machine, procs, wrapper, parms, combiner, timeout=timeout
            )
        # Per-copy statuses are plain integers assigned by the called
        # program (§4.3.1); the merged value is mapped onto the Status enum
        # when it is one of the §4.1.2 codes and kept as an int otherwise.
        raw_status = int(folded[0])
        try:
            status = Status(raw_status)
        except ValueError:
            status = raw_status  # type: ignore[assignment]
        return CallResult(status=status, reductions=list(folded[1:]))

    with obs_span(
        machine,
        "distributed_call",
        program=getattr(program, "__name__", "program"),
        processors=len(procs),
        supervised=retry is not None,
    ):
        if retry is None:
            result = attempt()
        else:
            from repro.faults.retry import run_with_retry

            label = f"{getattr(program, '__name__', 'call')}#{next(_CALL_LABELS)}"
            last, history = run_with_retry(
                attempt, retry, classify=lambda r: r.status, label=label
            )
            if isinstance(last, BaseException):
                result = CallResult(
                    status=Status.ERROR, reductions=[], error=last
                )
            else:
                result = last
            result.attempts = history

    if status_out is not None:
        status_out.define(result.status)
    for spec, value in zip(reduces, result.reductions):
        if spec.out is not None:
            spec.out.define(value)
    return result
