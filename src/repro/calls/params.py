"""Parameter specifications for distributed calls (§3.3.1.2, §4.3.1).

A parameter passed from the task-parallel caller to a called data-parallel
program is one of:

* a **global constant** — same value to every copy, input only;
* ``Local(array_id)`` — each copy receives *its own* local section of the
  distributed array, input and/or output (paper: ``{"local", Array_ID}``);
* ``Index()`` — each copy receives its index into the processors array,
  input only (paper: ``"index"``);
* ``StatusVar()`` — a per-copy integer status out-variable; local values
  are merged with a binary associative operator (default max) into the
  call's Status (paper: ``"status"``; at most one per call);
* ``Reduce(type, length, combine, out)`` — a per-copy out-variable of any
  type/length whose local values are merged pairwise with ``combine``
  (paper: ``{"reduce", Type, Length, Mod, Pgm, Variable}``; any number per
  call).

Both the pythonic spec objects and the paper's string/tuple syntax are
accepted; :func:`normalize_parameters` canonicalises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro.arrays.record import ArrayID
from repro.pcn.defvar import DefVar
from repro.spmd.reduce_ops import resolve_op

_VALID_REDUCE_TYPES = ("int", "double", "char", "complex")


@dataclass(frozen=True)
class Local:
    """A local-section parameter: ``{"local", Array_ID}``."""

    array_id: ArrayID


@dataclass(frozen=True)
class Index:
    """The per-copy index parameter: ``"index"``."""


@dataclass(frozen=True)
class StatusVar:
    """The per-copy status out-parameter: ``"status"``."""


@dataclass(frozen=True)
class Reduce:
    """A reduction out-parameter: ``{"reduce", Type, Length, ..., Var}``.

    ``combine`` is a binary associative callable (or a name from
    :mod:`repro.spmd.reduce_ops`).  ``out`` optionally receives the merged
    value as a definitional variable; merged values are also returned in
    :class:`repro.calls.api.CallResult`.
    """

    type_name: str
    length: int
    combine: Any
    out: Optional[DefVar] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.type_name not in _VALID_REDUCE_TYPES:
            raise ValueError(
                f"reduce type must be one of {_VALID_REDUCE_TYPES}, got "
                f"{self.type_name!r}"
            )
        if self.length < 1:
            raise ValueError(f"reduce length must be >= 1, got {self.length}")
        resolve_op(self.combine)  # validates


@dataclass(frozen=True)
class Constant:
    """A global-constant parameter (input only)."""

    value: Any = field(compare=False)


ParamSpec = Union[Local, Index, StatusVar, Reduce, Constant]


def _normalize_one(spec: Any) -> ParamSpec:
    if isinstance(spec, (Local, Index, StatusVar, Reduce, Constant)):
        return spec
    # Paper string forms.
    if isinstance(spec, str):
        if spec == "index":
            return Index()
        if spec == "status":
            return StatusVar()
        return Constant(spec)
    # Paper tuple forms.
    if isinstance(spec, tuple) and spec and isinstance(spec[0], str):
        tag = spec[0]
        if tag == "local":
            if len(spec) != 2 or not isinstance(spec[1], ArrayID):
                raise ValueError(
                    f'("local", Array_ID) expected, got {spec!r}'
                )
            return Local(spec[1])
        if tag == "reduce":
            # Accept ("reduce", type, length, combine[, out]) and the
            # paper's 6-tuple with separate module/program combine naming.
            if len(spec) == 6:
                _tag, type_name, length, _mod, combine, out = spec
            elif len(spec) == 5:
                _tag, type_name, length, combine, out = spec
            elif len(spec) == 4:
                _tag, type_name, length, combine = spec
                out = None
            else:
                raise ValueError(f"bad reduce spec {spec!r}")
            return Reduce(type_name, int(length), combine, out)
    return Constant(spec)


def normalize_parameters(parameters: Sequence[Any]) -> list[ParamSpec]:
    """Canonicalise a parameter list; enforce the at-most-one-status rule
    (§4.3.1 precondition)."""
    specs = [_normalize_one(p) for p in parameters]
    if sum(1 for s in specs if isinstance(s, StatusVar)) > 1:
        raise ValueError(
            'a distributed call may have at most one "status" parameter '
            "(§4.3.1)"
        )
    return specs


def status_position(specs: Sequence[ParamSpec]) -> Optional[int]:
    for i, s in enumerate(specs):
        if isinstance(s, StatusVar):
            return i
    return None


def reduce_specs(specs: Sequence[ParamSpec]) -> list[Reduce]:
    return [s for s in specs if isinstance(s, Reduce)]
