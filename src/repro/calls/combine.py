"""Generated combine programs (§5.2.3, §F.6).

The wrapper program returns, per copy, a tuple whose first element is the
local status and whose remaining elements are the local reduction values.
The generated combine program merges two such tuples elementwise: the
status element with the status combiner (default ``am_util:max``), each
reduction element with the combiner given in its parameter specification.

A tuple whose status element signals a wrapper-level failure (find_local
failed, DP program raised) propagates: combining anything with a failed
tuple keeps the *maximum* severity for the status slot and drops reduction
merging for slots whose inputs are missing — matching the thesis' generated
``default -> C_out = [1]`` severity behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.spmd.reduce_ops import resolve_op


def make_combine_program(
    status_combine: Optional[Any],
    reduce_combines: Sequence[Any],
) -> Callable[[tuple, tuple], tuple]:
    """Build the pairwise tuple combiner of §F.6.

    ``status_combine`` None selects the default ``max`` (§3.3.1.2).
    """
    fold_status = resolve_op(status_combine if status_combine is not None else "max")
    fold_reduces = [resolve_op(c) for c in reduce_combines]

    def combine(t1: tuple, t2: tuple) -> tuple:
        if len(t1) != len(t2) or len(t1) != 1 + len(fold_reduces):
            # The thesis' generated combine guards tuple shapes and yields
            # STATUS_INVALID (C_out = {1}) on mismatch.
            return (1,) + (None,) * len(fold_reduces)
        out: list[Any] = [fold_status(int(t1[0]), int(t2[0]))]
        for fold, a, b in zip(fold_reduces, t1[1:], t2[1:]):
            if a is None or b is None:
                out.append(a if b is None else b)
            else:
                out.append(fold(a, b))
        return tuple(out)

    return combine
