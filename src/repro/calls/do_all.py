"""The ``do_all`` primitive (§5.2.1).

``do_all`` executes a program concurrently on every processor of a group,
waits for all copies to complete, and pairwise-combines their per-copy
status values with a combine program.  It is the execution engine beneath
every distributed call; the generated wrapper program is what it runs.

Per the §5.2.1 specification, the program is called as
``program(index, parms, status)`` where ``status`` is a definitional
variable the copy must define; the results are folded **pairwise** with the
combine program.  We fold in index order, which is correct for any
associative combine (commutativity is not assumed, §3.3.1.2).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.obs.spans import span as obs_span
from repro.pcn.defvar import DefVar
from repro.status import Status
from repro.vp import fabric
from repro.vp.machine import Machine


def do_all(
    machine: Machine,
    processors: Sequence[int],
    program: Callable[[int, Any, DefVar], None],
    parms: Any,
    combine: Callable[[Any, Any], Any],
    status_out: Optional[DefVar] = None,
    timeout: Optional[float] = None,
) -> Any:
    """Run ``program`` once per processor; fold the per-copy statuses.

    Each copy executes as a process *on* its processor (it is a subprocess
    of the calling process, §3.4.2, which is why the sharing restriction of
    PCN extends to it).  The fold result is returned and, when supplied,
    defined on ``status_out`` — which, per §4.1.2, becomes defined only on
    completion of all copies, so callers may synchronise on it.
    """
    procs = [int(p) for p in processors]
    if not procs:
        raise ValueError("do_all over an empty processor group")
    # Refuse to start on a group containing a dead VP: placement would
    # fail partway through the spawn loop, stranding the earlier copies.
    machine.check_alive(procs)
    # A distributed-call boundary is a flush point for the write-behind
    # coalescer (repro.perf): every element write accepted before the
    # call is visible to the called program's local sections (§3.3
    # sequential call equivalence).
    perf = getattr(machine, "_perf", None)
    if perf is not None:
        perf.coalescer.flush()
    statuses = [DefVar(f"do_all_status[{i}]") for i in range(len(procs))]
    processes = []
    # One trace scope per call: every copy inherits the same trace id, so
    # all wrapper traffic (find_local hops, SPMD messages) of one
    # distributed call is reconstructible from the trace interceptor.  An
    # ambient trace (e.g. opened by an enclosing observability span) is
    # kept, so the call's messages stitch onto the span that made it; only
    # a trace-less caller gets a fresh ``dcall`` root.
    ambient, _ = fabric.current_trace()
    trace_id = ambient if ambient is not None else fabric.new_trace_id("dcall")
    with obs_span(machine, "do_all", processors=len(procs)):
        with fabric.execution_context(trace_id=trace_id):
            for i, p in enumerate(procs):
                node = machine.processor(p)
                processes.append(
                    node.spawn(
                        program, i, parms, statuses[i], name=f"do_all[{i}]@{p}"
                    )
                )

        # Join every copy; a copy that raised poisons the whole call with
        # STATUS_ERROR rather than hanging the caller.
        error: Optional[BaseException] = None
        for proc in processes:
            try:
                proc.join(timeout=timeout)
            except BaseException as exc:  # noqa: BLE001
                if error is None:
                    error = exc
        if error is not None:
            result: Any = Status.ERROR
            if status_out is not None:
                status_out.define(result)
            raise error

        values = [st.read(timeout=timeout) for st in statuses]
        with obs_span(machine, "combine", parts=len(values)):
            folded = values[0]
            for value in values[1:]:
                folded = combine(folded, value)
    if status_out is not None:
        status_out.define(folded)
    return folded
